package thermal

import (
	"math"
	"testing"

	"solarcore/internal/mcore"
	"solarcore/internal/workload"
)

func testChip(t *testing.T) *mcore.Chip {
	t.Helper()
	chip := mcore.MustNewChip(mcore.DefaultConfig())
	m, err := workload.MixByName("H1")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(chip); err != nil {
		t.Fatal(err)
	}
	return chip
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{RjaCPerW: 0, TauMin: 1, TMaxC: 95, THystC: 5},
		{RjaCPerW: 1, TauMin: 0, TMaxC: 95, THystC: 5},
		{RjaCPerW: 1, TauMin: 1, TMaxC: 0, THystC: 0},
		{RjaCPerW: 1, TauMin: 1, TMaxC: 50, THystC: 60},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if _, err := NewModel(nil, DefaultConfig(), 25); err == nil {
		t.Error("nil chip should error")
	}
}

func TestWarmupApproachesSteadyState(t *testing.T) {
	chip := testChip(t)
	chip.SetAllLevels(3)
	m, err := NewModel(chip, DefaultConfig(), 25)
	if err != nil {
		t.Fatal(err)
	}
	p := chip.CorePower(0, 0)
	want := m.SteadyState(p, 25)
	for i := 0; i < 50; i++ {
		m.Advance(0, 0.1, 25)
		if m.Throttled(0) {
			t.Fatalf("mid-level core should not throttle (T=%.1f)", m.Temp(0))
		}
	}
	if math.Abs(m.Temp(0)-want) > 0.5 {
		t.Errorf("after warm-up T=%.1f °C, steady state %.1f °C", m.Temp(0), want)
	}
}

func TestGatedCoreCoolsToAmbient(t *testing.T) {
	chip := testChip(t)
	chip.SetAllLevels(5)
	m, _ := NewModel(chip, DefaultConfig(), 30)
	for i := 0; i < 40; i++ {
		m.Advance(0, 0.1, 30)
	}
	chip.SetAllLevels(mcore.Gated)
	for i := 0; i < 60; i++ {
		m.Advance(0, 0.1, 30)
	}
	if math.Abs(m.Temp(3)-30) > 0.5 {
		t.Errorf("gated core at %.1f °C, want ambient 30", m.Temp(3))
	}
}

func TestHotCoreThrottles(t *testing.T) {
	// A desert afternoon: 45 °C ambient, art-class cores flat out. Steady
	// state ≈ 45 + 27·1.8 ≈ 94-97 °C — the governor must intervene.
	chip := testChip(t)
	chip.SetAllLevels(5)
	cfg := DefaultConfig()
	cfg.TMaxC = 85 // stricter trip to force the scenario
	m, err := NewModel(chip, cfg, 45)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Advance(0, 0.1, 45)
	}
	if m.ThrottleEvents() == 0 {
		t.Fatalf("no throttling at MaxTemp %.1f °C", m.MaxTemp())
	}
	// The governor must hold the fleet near/below the trip point.
	if m.MaxTemp() > cfg.TMaxC+3 {
		t.Errorf("governor lost control: %.1f °C", m.MaxTemp())
	}
	throttledSomewhere := false
	for i := 0; i < chip.NumCores(); i++ {
		if m.Throttled(i) || chip.Level(i) < 5 {
			throttledSomewhere = true
		}
	}
	if !throttledSomewhere {
		t.Error("no core was actually stepped down")
	}
}

func TestHysteresisRearm(t *testing.T) {
	chip := testChip(t)
	chip.SetAllLevels(5)
	cfg := DefaultConfig()
	cfg.TMaxC = 80
	m, _ := NewModel(chip, cfg, 45)
	for i := 0; i < 80; i++ {
		m.Advance(0, 0.1, 45)
	}
	// Cool everything: gate the chip, drop ambient.
	chip.SetAllLevels(mcore.Gated)
	for i := 0; i < 200; i++ {
		m.Advance(0, 0.1, 20)
	}
	for i := 0; i < chip.NumCores(); i++ {
		if m.Throttled(i) {
			t.Errorf("core %d still flagged after full cooldown (%.1f °C)", i, m.Temp(i))
		}
	}
}

func TestThrottleInteractsWithAllocation(t *testing.T) {
	// After throttling, total chip power must drop — the watts the
	// allocator thought it spent are partially revoked by physics.
	chip := testChip(t)
	chip.SetAllLevels(5)
	before := chip.Power(0)
	cfg := DefaultConfig()
	cfg.TMaxC = 75
	m, _ := NewModel(chip, cfg, 48)
	for i := 0; i < 150; i++ {
		m.Advance(0, 0.1, 48)
	}
	if after := chip.Power(0); after >= before {
		t.Errorf("throttling left chip power unchanged: %.1f W", after)
	}
}

func TestPeakIsHighWaterMark(t *testing.T) {
	chip := testChip(t)
	chip.SetAllLevels(5)
	m, _ := NewModel(chip, DefaultConfig(), 30)
	for i := 0; i < 60; i++ {
		m.Advance(0, 0.1, 30)
	}
	hot := m.Peak()
	chip.SetAllLevels(mcore.Gated)
	for i := 0; i < 200; i++ {
		m.Advance(0, 0.1, 20)
	}
	if m.Peak() != hot {
		t.Errorf("peak moved after cooldown: %v vs %v", m.Peak(), hot)
	}
	if m.MaxTemp() >= hot {
		t.Error("current temp should be below the historical peak after cooldown")
	}
}
