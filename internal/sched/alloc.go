// Package sched implements the per-core load-adaptation policies compared
// in Table 6. Each policy answers one question the MPPT loop asks over and
// over: when the tracked power budget grows or shrinks by one step, which
// core's DVFS level moves?
//
//   - OptTPR is the paper's contribution (MPPT&Opt): a throughput-power
//     ratio table (Figure 10) gives extra watts to the core with the best
//     marginal performance and reclaims watts from the core with the worst.
//   - RoundRobin (MPPT&RR) spreads budget variation evenly across cores.
//   - IndividualCore (MPPT&IC) tunes one core to its extreme before
//     touching the next.
//   - PlanBudget is the non-tracking Fixed-Power baseline's planner: a
//     greedy knapsack equivalent to the paper's linear-programming
//     scheduling under a constant budget.
package sched

import (
	"solarcore/internal/mcore"
)

// Allocator decides which core moves when the MPPT loop raises or lowers
// the multi-core load by one DVFS step.
type Allocator interface {
	// Name returns the Table 6 policy name.
	Name() string
	// Raise moves one core up one operating point; false when every core is
	// already at the top.
	Raise(chip *mcore.Chip, minute float64) bool
	// Lower moves one core down one operating point (possibly gating it);
	// false when every core is already gated.
	Lower(chip *mcore.Chip, minute float64) bool
	// Reset clears any cursor state at the start of a run.
	Reset()
}

// OptTPR is the SolarCore allocation policy (MPPT&Opt): highest
// throughput-power ratio receives power first, lowest gives it up first
// (Section 4.3, Figures 10-12).
type OptTPR struct{}

// Name returns the Table 6 policy name.
func (OptTPR) Name() string { return "MPPT&Opt" }

// Reset is a no-op; the TPR table is recomputed from live counters.
func (OptTPR) Reset() {}

// Raise steps up the core with the best marginal throughput per watt.
func (OptTPR) Raise(chip *mcore.Chip, minute float64) bool {
	best, bestTPR := -1, 0.0
	for i := 0; i < chip.NumCores(); i++ {
		if tpr := chip.TPRUp(i, minute); tpr > bestTPR {
			best, bestTPR = i, tpr
		}
	}
	if best < 0 {
		return false
	}
	return chip.StepUp(best)
}

// Lower steps down the core whose last watt buys the least throughput.
func (OptTPR) Lower(chip *mcore.Chip, minute float64) bool {
	worst, worstTPR := -1, 0.0
	for i := 0; i < chip.NumCores(); i++ {
		if chip.Level(i) == mcore.Gated {
			continue
		}
		tpr := chip.TPRDown(i, minute)
		if tpr <= 0 {
			continue
		}
		if worst < 0 || tpr < worstTPR {
			worst, worstTPR = i, tpr
		}
	}
	if worst < 0 {
		return false
	}
	return chip.StepDown(worst)
}

// RoundRobin is the MPPT&RR policy: budget variation is distributed across
// cores in cyclic order, leaving every core at a moderate operating point.
type RoundRobin struct {
	cursor int
}

// Name returns the Table 6 policy name.
func (*RoundRobin) Name() string { return "MPPT&RR" }

// Reset rewinds the cursor.
func (r *RoundRobin) Reset() { r.cursor = 0 }

// Raise steps up the next core in cyclic order that can move.
func (r *RoundRobin) Raise(chip *mcore.Chip, minute float64) bool {
	return r.next(chip, (*mcore.Chip).StepUp)
}

// Lower steps down the next core in cyclic order that can move.
func (r *RoundRobin) Lower(chip *mcore.Chip, minute float64) bool {
	return r.next(chip, (*mcore.Chip).StepDown)
}

func (r *RoundRobin) next(chip *mcore.Chip, step func(*mcore.Chip, int) bool) bool {
	n := chip.NumCores()
	for tries := 0; tries < n; tries++ {
		core := r.cursor % n
		r.cursor = (r.cursor + 1) % n
		if step(chip, core) {
			return true
		}
	}
	return false
}

// IndividualCore is the MPPT&IC policy: keep tuning one core until it hits
// its highest (or lowest) operating point before touching the next, which
// concentrates the solar power into few cores.
type IndividualCore struct{}

// Name returns the Table 6 policy name.
func (IndividualCore) Name() string { return "MPPT&IC" }

// Reset is a no-op.
func (IndividualCore) Reset() {}

// Raise steps up the lowest-numbered core that is not yet at the top.
func (IndividualCore) Raise(chip *mcore.Chip, minute float64) bool {
	for i := 0; i < chip.NumCores(); i++ {
		if chip.StepUp(i) {
			return true
		}
	}
	return false
}

// Lower steps down the highest-numbered core that is not yet gated, so the
// concentration built by Raise is preserved.
func (IndividualCore) Lower(chip *mcore.Chip, minute float64) bool {
	for i := chip.NumCores() - 1; i >= 0; i-- {
		if chip.StepDown(i) {
			return true
		}
	}
	return false
}

// policies is the single source of truth for the Table 6 policy set:
// the paper's order, each name bound to a factory for a fresh allocator.
// Every lookup (ByName), listing (Names, Allocators) and the facade's
// Policies() derive from this table.
var policies = []struct {
	name string
	make func() Allocator
}{
	{"MPPT&IC", func() Allocator { return IndividualCore{} }},
	{"MPPT&RR", func() Allocator { return &RoundRobin{} }},
	{"MPPT&Opt", func() Allocator { return OptTPR{} }},
}

// Allocators returns fresh instances of the three MPPT load-adaptation
// policies of Table 6 in the paper's order.
func Allocators() []Allocator {
	out := make([]Allocator, len(policies))
	for i, p := range policies {
		out[i] = p.make()
	}
	return out
}

// Names lists the Table 6 policy names in the paper's order.
func Names() []string {
	out := make([]string, len(policies))
	for i, p := range policies {
		out[i] = p.name
	}
	return out
}

// ByName returns a fresh allocator for a Table 6 policy name.
func ByName(name string) (Allocator, bool) {
	for _, p := range policies {
		if p.name == name {
			return p.make(), true
		}
	}
	return nil, false
}

// PlanBudget configures the chip for a fixed power budget: starting from
// all cores gated, it greedily steps up the best throughput-per-watt core
// while the chip's total power stays within the budget. This is the
// Fixed-Power baseline's "linear programming optimization with a fixed
// power budget" (Table 6) in its exact greedy form.
//
// It returns the planned chip power.
func PlanBudget(chip *mcore.Chip, minute, budget float64) float64 {
	for i := 0; i < chip.NumCores(); i++ {
		_ = chip.SetLevel(i, mcore.Gated) // i and Gated are in range by construction
	}
	power := 0.0
	for {
		best, bestTPR := -1, 0.0
		var bestDP float64
		for i := 0; i < chip.NumCores(); i++ {
			dT, dP, ok := chip.DeltaUp(i, minute)
			if !ok || dP <= 0 || power+dP > budget {
				continue
			}
			if tpr := dT / dP; tpr > bestTPR {
				best, bestTPR, bestDP = i, tpr, dP
			}
		}
		if best < 0 {
			return power
		}
		chip.StepUp(best)
		power += bestDP
	}
}
