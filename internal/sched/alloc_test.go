package sched

import (
	"testing"
	"testing/quick"

	"solarcore/internal/mcore"
	"solarcore/internal/workload"
)

func hm2Chip(t *testing.T) *mcore.Chip {
	t.Helper()
	chip := mcore.MustNewChip(mcore.DefaultConfig())
	mix, err := workload.MixByName("HM2")
	if err != nil {
		t.Fatal(err)
	}
	if err := mix.Apply(chip); err != nil {
		t.Fatal(err)
	}
	chip.SetAllLevels(mcore.Gated)
	return chip
}

func TestOptRaisesBestTPRCore(t *testing.T) {
	chip := hm2Chip(t)
	chip.SetAllLevels(2)
	// Identify the best marginal core by hand.
	best, bestTPR := -1, 0.0
	for i := 0; i < 8; i++ {
		if tpr := chip.TPRUp(i, 0); tpr > bestTPR {
			best, bestTPR = i, tpr
		}
	}
	OptTPR{}.Raise(chip, 0)
	if chip.Level(best) != 3 {
		t.Errorf("Opt raised %v, want core %d", chip.Levels(), best)
	}
}

func TestOptLowerPrefersWorstCore(t *testing.T) {
	chip := hm2Chip(t)
	chip.SetAllLevels(3)
	worst, worstTPR := -1, 0.0
	for i := 0; i < 8; i++ {
		tpr := chip.TPRDown(i, 0)
		if worst < 0 || (tpr > 0 && tpr < worstTPR) {
			worst, worstTPR = i, tpr
		}
	}
	OptTPR{}.Lower(chip, 0)
	if chip.Level(worst) != 2 {
		t.Errorf("Opt lowered %v, want core %d", chip.Levels(), worst)
	}
}

func TestOptExtremes(t *testing.T) {
	chip := hm2Chip(t)
	chip.SetAllLevels(5)
	if (OptTPR{}).Raise(chip, 0) {
		t.Error("Raise with all cores at top should fail")
	}
	chip.SetAllLevels(mcore.Gated)
	if (OptTPR{}).Lower(chip, 0) {
		t.Error("Lower with all cores gated should fail")
	}
	// From all gated, Raise must ungate something.
	if !(OptTPR{}).Raise(chip, 0) {
		t.Error("Raise from all gated should succeed")
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	chip := hm2Chip(t)
	rr := &RoundRobin{}
	rr.Reset()
	for i := 0; i < 16; i++ {
		if !rr.Raise(chip, 0) {
			t.Fatal("raise failed early")
		}
	}
	for i, lvl := range chip.Levels() {
		if lvl != 1 {
			t.Errorf("core %d at level %d after 16 raises, want 1 everywhere", i, lvl)
		}
	}
	for i := 0; i < 8; i++ {
		rr.Lower(chip, 0)
	}
	for i, lvl := range chip.Levels() {
		if lvl != 0 {
			t.Errorf("core %d at level %d after 8 lowers, want 0", i, lvl)
		}
	}
}

func TestRoundRobinSkipsSaturated(t *testing.T) {
	chip := hm2Chip(t)
	chip.SetAllLevels(5)
	chip.SetLevel(3, 2)
	rr := &RoundRobin{}
	if !rr.Raise(chip, 0) {
		t.Fatal("raise should find the one tunable core")
	}
	if chip.Level(3) != 3 {
		t.Errorf("levels %v, want core 3 raised", chip.Levels())
	}
	chip.SetAllLevels(5)
	if rr.Raise(chip, 0) {
		t.Error("raise with everything at top should fail")
	}
}

func TestIndividualCoreConcentrates(t *testing.T) {
	chip := hm2Chip(t)
	ic := IndividualCore{}
	// 6 raises from all-gated: core 0 gets gated→0→1→2→3→4; the 7th touches core 0 again.
	for i := 0; i < 6; i++ {
		ic.Raise(chip, 0)
	}
	levels := chip.Levels()
	if levels[0] != 5 {
		t.Errorf("levels %v, want core 0 saturated first", levels)
	}
	if levels[1] != mcore.Gated {
		t.Errorf("levels %v, want core 1 untouched", levels)
	}
	ic.Raise(chip, 0)
	if chip.Level(1) != 0 {
		t.Errorf("7th raise should ungate core 1: %v", chip.Levels())
	}
	// Lower takes from the tail first.
	chip.SetAllLevels(3)
	ic.Lower(chip, 0)
	if chip.Level(7) != 2 {
		t.Errorf("lower should hit core 7 first: %v", chip.Levels())
	}
}

func TestAllocatorsRegistry(t *testing.T) {
	as := Allocators()
	if len(as) != 3 {
		t.Fatalf("%d allocators, want 3", len(as))
	}
	want := []string{"MPPT&IC", "MPPT&RR", "MPPT&Opt"}
	for i, a := range as {
		if a.Name() != want[i] {
			t.Errorf("allocator %d = %s, want %s", i, a.Name(), want[i])
		}
		if byName, ok := ByName(a.Name()); !ok || byName.Name() != a.Name() {
			t.Errorf("ByName(%s) failed", a.Name())
		}
		a.Reset() // must not panic
	}
	if _, ok := ByName("MPPT&Magic"); ok {
		t.Error("unknown policy should not resolve")
	}
}

func TestPlanBudgetRespectsBudget(t *testing.T) {
	chip := hm2Chip(t)
	prop := func(bRaw uint8) bool {
		budget := float64(bRaw) // 0..255 W
		planned := PlanBudget(chip, 0, budget)
		diff := planned - chip.Power(0)
		return planned <= budget+1e-9 && diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPlanBudgetMonotone(t *testing.T) {
	chip := hm2Chip(t)
	prevT := 0.0
	for _, b := range []float64{10, 25, 50, 75, 100, 125, 200} {
		PlanBudget(chip, 0, b)
		tp := chip.Throughput(0)
		if tp < prevT-1e-9 {
			t.Errorf("budget %v: throughput %v fell below %v", b, tp, prevT)
		}
		prevT = tp
	}
}

func TestPlanBudgetZero(t *testing.T) {
	chip := hm2Chip(t)
	chip.SetAllLevels(5)
	if got := PlanBudget(chip, 0, 0); got != 0 {
		t.Errorf("zero budget planned %v W", got)
	}
	for i, lvl := range chip.Levels() {
		if lvl != mcore.Gated {
			t.Errorf("core %d not gated under zero budget", i)
		}
	}
}

func TestPlanBudgetBeatsNaiveUniform(t *testing.T) {
	// Under a tight budget the greedy TPR plan should achieve at least the
	// throughput of the best uniform-level assignment that fits.
	chip := hm2Chip(t)
	budget := 60.0
	PlanBudget(chip, 0, budget)
	planned := chip.Throughput(0)

	bestUniform := 0.0
	for lvl := 0; lvl < chip.NumLevels(); lvl++ {
		chip.SetAllLevels(lvl)
		if chip.Power(0) <= budget && chip.Throughput(0) > bestUniform {
			bestUniform = chip.Throughput(0)
		}
	}
	if planned < bestUniform {
		t.Errorf("greedy plan %v GIPS below best uniform %v", planned, bestUniform)
	}
}
