package pv

import (
	"math"

	"solarcore/internal/mathx"
)

// Module is a PV module evaluated under arbitrary environments. It is
// stateless and safe for concurrent use.
type Module struct {
	P ModuleParams

	// Derived at construction.
	i0Ref float64 // diode saturation current at TRef, A
}

// NewModule builds a Module, deriving the reference saturation current from
// the STC open-circuit condition: Iph(STC) = I0ref·(exp(Voc/NsVt) − 1).
func NewModule(p ModuleParams) *Module {
	vt := p.thermalVoltage(TRef)
	i0 := p.IscRef / math.Expm1(p.VocRef/vt)
	return &Module{P: p, i0Ref: i0}
}

// photocurrent returns Iph under env: proportional to irradiance with a
// linear temperature coefficient.
//
// unit: A
func (m *Module) photocurrent(env Env) float64 {
	if env.Irradiance <= 0 {
		return 0
	}
	return (m.P.IscRef + m.P.Ki*(env.CellTemp-TRef)) * env.Irradiance / GRef
}

// saturationCurrent returns the diode reverse saturation current I0 at the
// env cell temperature: I0ref·(T/Tref)³·exp(qEg/(nk)·(1/Tref − 1/T)).
//
// unit: A
func (m *Module) saturationCurrent(env Env) float64 {
	t := kelvin(env.CellTemp)
	tr := kelvin(TRef)
	ratio := t / tr
	expo := q * m.P.BandgapEV / (m.P.IdealityN * kB) * (1/tr - 1/t)
	return m.i0Ref * ratio * ratio * ratio * math.Exp(expo)
}

// OpenCircuitVoltage returns Voc under env. At I = 0 the series resistance
// drops out, so Voc has the closed form NsVt·ln(Iph/I0 + 1).
//
// unit: V
func (m *Module) OpenCircuitVoltage(env Env) float64 {
	iph := m.photocurrent(env)
	if iph <= 0 {
		return 0
	}
	vt := m.P.thermalVoltage(env.CellTemp)
	return vt * math.Log(iph/m.saturationCurrent(env)+1)
}

// ShortCircuitCurrent returns Isc under env (terminal voltage zero).
//
// unit: A
func (m *Module) ShortCircuitCurrent(env Env) float64 {
	return m.Current(env, 0)
}

// Current returns the module output current at terminal voltage v under env,
// solving the implicit single-diode equation
//
//	I = Iph − I0·(exp((V + I·Rs)/(Ns·n·kT/q)) − 1).
//
// For v at or above the open-circuit voltage the result is clamped to 0: the
// blocking diode of a direct-coupled system prevents the module from sinking
// current.
//
// unit: v=V, return=A
func (m *Module) Current(env Env, v float64) float64 {
	iph := m.photocurrent(env)
	if iph <= 0 {
		return 0
	}
	i0 := m.saturationCurrent(env)
	vt := m.P.thermalVoltage(env.CellTemp)
	rs := m.P.SeriesR

	if rs == 0 {
		i := iph - i0*math.Expm1(v/vt)
		if i < 0 {
			return 0
		}
		return i
	}

	f := func(i float64) float64 { return iph - i0*math.Expm1((v+i*rs)/vt) - i }
	df := func(i float64) float64 { return -i0*math.Exp((v+i*rs)/vt)*rs/vt - 1 }
	lo, hi := -iph-1, iph+1
	i, err := mathx.NewtonBisect(f, df, lo, hi, 1e-12)
	if err != nil {
		// f is strictly decreasing; a failed bracket means v is far beyond
		// Voc where the module cannot source current.
		return 0
	}
	if i < 0 {
		return 0
	}
	return i
}

// VoltageAt inverts the I-V characteristic: the terminal voltage at which
// the module carries current i. The single-diode equation inverts in closed
// form, V = NsVt·ln((Iph − I)/I0 + 1) − I·Rs. ok is false when the module
// cannot source i at any forward voltage (i ≥ Iph + I0) — in a series
// string that is when its bypass diode must conduct.
//
// unit: i=A, v=V
func (m *Module) VoltageAt(env Env, i float64) (v float64, ok bool) {
	iph := m.photocurrent(env)
	i0 := m.saturationCurrent(env)
	if i < 0 || iph-i+i0 <= 0 {
		return 0, false
	}
	vt := m.P.thermalVoltage(env.CellTemp)
	v = vt*math.Log((iph-i)/i0+1) - i*m.P.SeriesR
	if v < 0 {
		return 0, false
	}
	return v, true
}

// Power returns the module output power V·I(V) at terminal voltage v.
//
// unit: v=V, return=W
func (m *Module) Power(env Env, v float64) float64 {
	if v <= 0 {
		return 0
	}
	return v * m.Current(env, v)
}

// ResistiveOperating returns the operating point of the module loaded by a
// resistance r: the intersection of the I-V curve with the load line
// I = V/R. Substituting I = V/r into the single-diode equation collapses
// the nested solve into one scalar root find,
//
//	h(V) = Iph − I0·(exp(V·(1 + Rs/r)/NsVt) − 1) − V/r = 0,
//
// which is strictly decreasing and bracketed by [0, Voc], so the guarded
// Newton converges in a handful of iterations. This is the hot path of the
// circuit simulation.
//
// unit: r=Ω, v=V, i=A
func (m *Module) ResistiveOperating(env Env, r float64) (v, i float64) {
	voc := m.OpenCircuitVoltage(env)
	if voc <= 0 {
		return 0, 0
	}
	if math.IsInf(r, 1) {
		return voc, 0
	}
	if r <= 0 {
		return 0, m.Current(env, 0)
	}
	iph := m.photocurrent(env)
	i0 := m.saturationCurrent(env)
	vt := m.P.thermalVoltage(env.CellTemp)
	c := (1 + m.P.SeriesR/r) / vt
	h := func(v float64) float64 { return iph - i0*math.Expm1(v*c) - v/r }
	dh := func(v float64) float64 { return -i0*math.Exp(v*c)*c - 1/r }
	v, err := mathx.NewtonBisect(h, dh, 0, voc, voc*1e-10)
	if err != nil {
		// h(0) = Iph > 0 and h(Voc) < 0, so a bracket failure can only mean
		// a degenerate panel; behave as a dark module.
		return 0, 0
	}
	return v, v / r
}

// MPP is a maximum power point: the voltage, current and power at which the
// generator output is maximal for a given environment.
type MPP struct {
	V float64 // MPP voltage, V
	I float64 // MPP current, A
	P float64 // MPP power, W
}

// MPP returns the maximum power point under env via golden-section search on
// the unimodal P-V curve over [0, Voc].
func (m *Module) MPP(env Env) MPP {
	voc := m.OpenCircuitVoltage(env)
	if voc <= 0 {
		return MPP{}
	}
	v, p := mathx.GoldenMax(func(v float64) float64 { return m.Power(env, v) }, 0, voc, voc*1e-7)
	return MPP{V: v, I: p / v, P: p}
}
