// Package pv models photovoltaic generation: the single-diode equivalent
// circuit of a solar cell (Section 2 of the paper), module- and array-level
// I-V and P-V characteristics, and maximum-power-point computation.
//
// The model is the "moderate complexity" one the paper chooses: a
// photocurrent source in parallel with one diode plus a series resistance;
// shunt resistance is neglected. Photocurrent scales with irradiance and has
// a linear temperature coefficient; diode saturation current follows the
// usual T³·exp(-Eg/nkT) law. This reproduces the SPICE-derived curve
// families of Figures 6 and 7 analytically.
package pv

// Physical constants (SI).
const (
	q  = 1.602176634e-19 // elementary charge, C
	kB = 1.380649e-23    // Boltzmann constant, J/K
)

// kelvin converts a Celsius temperature to Kelvin.
//
// unit: celsius=°C, return=K
func kelvin(celsius float64) float64 { return celsius + 273.15 }

// Standard test conditions used as the calibration reference.
const (
	GRef = 1000.0 // W/m², STC irradiance
	TRef = 25.0   // °C, STC cell temperature
)

// ModuleParams describes one PV module electrically. The zero value is not
// usable; start from BP3180N (the module the paper models) or fill every
// field.
type ModuleParams struct {
	Name string

	CellsInSeries int     // Ns, number of series-connected cells
	IscRef        float64 // short-circuit current at STC, A
	VocRef        float64 // open-circuit voltage at STC, V
	Ki            float64 // Isc temperature coefficient, A/K
	IdealityN     float64 // diode ideality factor n
	SeriesR       float64 // lumped series resistance Rs, Ω
	BandgapEV     float64 // semiconductor bandgap Eg, eV (silicon ≈ 1.12)

	// NOCT is the nominal operating cell temperature in °C, used to derive
	// cell temperature from ambient temperature and irradiance.
	NOCT float64
}

// BP3180N returns parameters calibrated to the BP Solar BP3180N 180 W
// polycrystalline module referenced in Section 3: 72 series cells,
// Isc ≈ 5.4 A, Voc ≈ 44.2 V, Pmax ≈ 180 W at STC.
func BP3180N() ModuleParams {
	return ModuleParams{
		Name:          "BP3180N",
		CellsInSeries: 72,
		IscRef:        5.40,
		VocRef:        44.2,
		Ki:            0.0035, // ≈ +0.065 %/K of Isc
		IdealityN:     1.30,
		SeriesR:       0.35,
		BandgapEV:     1.12,
		NOCT:          47,
	}
}

// Env is the atmospheric operating condition seen by the panel.
type Env struct {
	Irradiance float64 // G, W/m² on the panel plane
	CellTemp   float64 // cell temperature, °C
}

// STC is the standard test condition: 1000 W/m² at 25 °C cell temperature.
var STC = Env{Irradiance: GRef, CellTemp: TRef}

// noctIrradiance is the irradiance at which NOCT is specified (the
// denominator of the standard NOCT model).
const noctIrradiance = 800.0 // unit: W/m²

// noctAmbient is the ambient temperature at which NOCT is specified.
const noctAmbient = 20.0 // unit: °C

// CellTemperature estimates cell temperature from ambient temperature and
// irradiance with the standard NOCT model: Tcell = Tamb + (NOCT-20)/800·G.
//
// unit: ambientC=°C, irradiance=W/m², return=°C
func (p *ModuleParams) CellTemperature(ambientC, irradiance float64) float64 {
	return ambientC + (p.NOCT-noctAmbient)/noctIrradiance*irradiance
}

// thermalVoltage returns the module-level thermal voltage n·k·T/q·Ns at cell
// temperature tC (°C).
//
// unit: tC=°C, return=V
func (p *ModuleParams) thermalVoltage(tC float64) float64 {
	return p.IdealityN * kB * kelvin(tC) / q * float64(p.CellsInSeries)
}
