package pv

import (
	"math"
	"testing"
)

func TestTwoDiodeCloseToSingleAtSTC(t *testing.T) {
	// The justification for the paper's single-diode choice: at standard
	// conditions the recombination diode changes Pmax by only a few
	// percent.
	one := NewModule(BP3180N())
	two := NewTwoDiodeModule(BP3180N())
	p1, p2 := one.MPP(STC).P, two.MPP(STC).P
	if p2 >= p1 {
		t.Errorf("second diode should only sink current: %v vs %v", p2, p1)
	}
	if rel := (p1 - p2) / p1; rel > 0.06 {
		t.Errorf("two-diode Pmax deviates %.1f%% at STC, want small", rel*100)
	}
}

func TestTwoDiodeMattersMoreAtLowLight(t *testing.T) {
	one := NewModule(BP3180N())
	two := NewTwoDiodeModule(BP3180N())
	rel := func(g float64) float64 {
		env := Env{Irradiance: g, CellTemp: 25}
		p1, p2 := one.MPP(env).P, two.MPP(env).P
		return (p1 - p2) / p1
	}
	if rel(100) <= rel(1000) {
		t.Errorf("recombination losses should grow at low light: %.3f vs %.3f", rel(100), rel(1000))
	}
}

func TestTwoDiodeGeneratorContract(t *testing.T) {
	m := NewTwoDiodeModule(BP3180N())
	voc := m.OpenCircuitVoltage(STC)
	if voc <= 0 || voc >= m.Module.OpenCircuitVoltage(STC)+1e-9 {
		t.Errorf("two-diode Voc = %v, want below single-diode Voc", voc)
	}
	if c := m.Current(STC, voc); math.Abs(c) > 1e-3 {
		t.Errorf("Current(Voc) = %v", c)
	}
	// Monotone I-V.
	prev := math.Inf(1)
	for i := 0; i <= 40; i++ {
		v := voc * float64(i) / 40
		c := m.Current(STC, v)
		if c > prev+1e-9 {
			t.Fatalf("two-diode I-V not monotone at %v", v)
		}
		prev = c
	}
	// Resistive operating point on both curves.
	v, i := m.ResistiveOperating(STC, 7)
	if math.Abs(i-v/7) > 1e-6 {
		t.Errorf("load line missed: %v vs %v", i, v/7)
	}
	if math.Abs(m.Current(STC, v)-i) > 1e-3 {
		t.Errorf("curve missed: %v vs %v", m.Current(STC, v), i)
	}
	// Edge cases.
	if m.Current(Env{0, 25}, 10) != 0 || m.OpenCircuitVoltage(Env{0, 25}) != 0 {
		t.Error("dark two-diode module should be dead")
	}
	if p := m.MPP(Env{0, 25}); p.P != 0 {
		t.Error("dark MPP should be zero")
	}
	if _, i := m.ResistiveOperating(STC, 0); i <= 0 {
		t.Error("short circuit should carry current")
	}
	if v, i := m.ResistiveOperating(STC, math.Inf(1)); i != 0 || v <= 0 {
		t.Error("open circuit wrong")
	}
}

func TestPowerTemperatureCoefficient(t *testing.T) {
	// Datasheet validation: crystalline silicon modules lose ~0.4-0.5 % of
	// Pmax per °C (BP3180N datasheet: −0.5 %/K). Measure the model's
	// coefficient over the 25→50 °C span of Figure 7.
	m := bp()
	p25 := m.MPP(Env{Irradiance: 1000, CellTemp: 25}).P
	p50 := m.MPP(Env{Irradiance: 1000, CellTemp: 50}).P
	coeff := (p25 - p50) / 25 / p25
	if coeff < 0.0030 || coeff > 0.0060 {
		t.Errorf("power temperature coefficient %.4f/K, datasheet says ≈ 0.005/K", coeff)
	}
}
