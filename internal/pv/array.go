package pv

// Generator is the common read interface of PV modules and arrays: anything
// with an I-V characteristic and a maximum power point. The SolarCore
// controller and the operating-point solver are written against this
// interface, so a single module, a series string, or a full array can power
// the load interchangeably.
type Generator interface {
	// Current returns output current (A) at terminal voltage v (V) under env.
	//
	// unit: v=V, return=A
	Current(env Env, v float64) float64
	// Power returns output power (W) at terminal voltage v under env.
	//
	// unit: v=V, return=W
	Power(env Env, v float64) float64
	// OpenCircuitVoltage returns Voc (V) under env.
	//
	// unit: V
	OpenCircuitVoltage(env Env) float64
	// ShortCircuitCurrent returns Isc (A) under env.
	//
	// unit: A
	ShortCircuitCurrent(env Env) float64
	// MPP returns the maximum power point under env.
	MPP(env Env) MPP
	// ResistiveOperating returns the terminal voltage and current where the
	// I-V curve intersects a resistive load line I = V/R.
	//
	// unit: r=Ω, v=V, i=A
	ResistiveOperating(env Env, r float64) (v, i float64)
}

var (
	_ Generator = (*Module)(nil)
	_ Generator = (*Array)(nil)
)

// Array is a series-parallel interconnection of identical modules under
// uniform irradiance: Series modules per string, Parallel strings. Voltages
// scale with Series, currents with Parallel.
type Array struct {
	Module   *Module
	Series   int
	Parallel int
}

// NewArray builds an Array of series×parallel copies of the module described
// by p. Both counts must be at least 1; values below 1 are raised to 1.
func NewArray(p ModuleParams, series, parallel int) *Array {
	if series < 1 {
		series = 1
	}
	if parallel < 1 {
		parallel = 1
	}
	return &Array{Module: NewModule(p), Series: series, Parallel: parallel}
}

// Current returns the array output current at terminal voltage v under env.
//
// unit: v=V, return=A
func (a *Array) Current(env Env, v float64) float64 {
	return float64(a.Parallel) * a.Module.Current(env, v/float64(a.Series))
}

// Power returns the array output power at terminal voltage v under env.
//
// unit: v=V, return=W
func (a *Array) Power(env Env, v float64) float64 {
	if v <= 0 {
		return 0
	}
	return v * a.Current(env, v)
}

// OpenCircuitVoltage returns the array Voc under env.
//
// unit: V
func (a *Array) OpenCircuitVoltage(env Env) float64 {
	return float64(a.Series) * a.Module.OpenCircuitVoltage(env)
}

// ShortCircuitCurrent returns the array Isc under env.
//
// unit: A
func (a *Array) ShortCircuitCurrent(env Env) float64 {
	return float64(a.Parallel) * a.Module.ShortCircuitCurrent(env)
}

// ResistiveOperating returns the array-level resistive operating point. A
// load R at the array terminals presents each module with the resistance
// R·Parallel/Series (the string divides voltage, the bank divides current).
//
// unit: r=Ω, v=V, i=A
func (a *Array) ResistiveOperating(env Env, r float64) (v, i float64) {
	rm := r * float64(a.Parallel) / float64(a.Series)
	mv, mi := a.Module.ResistiveOperating(env, rm)
	return mv * float64(a.Series), mi * float64(a.Parallel)
}

// MPP returns the array maximum power point under env, scaled from the
// module MPP (exact under the uniform-irradiance assumption).
func (a *Array) MPP(env Env) MPP {
	m := a.Module.MPP(env)
	return MPP{
		V: m.V * float64(a.Series),
		I: m.I * float64(a.Parallel),
		P: m.P * float64(a.Series) * float64(a.Parallel),
	}
}
