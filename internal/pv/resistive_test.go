package pv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResistiveOperatingOnCurve(t *testing.T) {
	// Property: the fast joint solve lands on the I-V curve and the load
	// line simultaneously, for random loads and environments.
	m := bp()
	prop := func(rRaw, gRaw uint8) bool {
		r := 0.5 + float64(rRaw)/4 // 0.5..64 Ω
		env := Env{Irradiance: 150 + 4*float64(gRaw), CellTemp: 30}
		v, i := m.ResistiveOperating(env, r)
		if v < 0 || i < 0 {
			return false
		}
		// On the load line.
		if math.Abs(i-v/r) > 1e-9 {
			return false
		}
		// On the I-V curve (cross-check against the implicit solver).
		return math.Abs(m.Current(env, v)-i) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResistiveOperatingEdges(t *testing.T) {
	m := bp()
	if v, i := m.ResistiveOperating(Env{0, 25}, 10); v != 0 || i != 0 {
		t.Errorf("dark: %v, %v", v, i)
	}
	v, i := m.ResistiveOperating(STC, math.Inf(1))
	if i != 0 || math.Abs(v-m.OpenCircuitVoltage(STC)) > 1e-9 {
		t.Errorf("open: %v, %v", v, i)
	}
	v, i = m.ResistiveOperating(STC, 0)
	if v != 0 || math.Abs(i-m.ShortCircuitCurrent(STC)) > 1e-6 {
		t.Errorf("short: %v, %v", v, i)
	}
}

func TestArrayResistiveOperating(t *testing.T) {
	// A 2×2 array on a load R behaves like one module on R (same V/I per
	// module, voltage and current both doubled).
	a := NewArray(BP3180N(), 2, 2)
	m := a.Module
	vm, im := m.ResistiveOperating(STC, 7)
	va, ia := a.ResistiveOperating(STC, 7)
	if math.Abs(va-2*vm) > 1e-6 || math.Abs(ia-2*im) > 1e-6 {
		t.Errorf("array op (%v,%v), want (%v,%v)", va, ia, 2*vm, 2*im)
	}
	// Load-line consistency at array level.
	if math.Abs(ia-va/7) > 1e-9 {
		t.Errorf("array point off the load line: %v vs %v", ia, va/7)
	}
}

func BenchmarkResistiveOperating(b *testing.B) {
	m := bp()
	env := Env{Irradiance: 700, CellTemp: 40}
	for i := 0; i < b.N; i++ {
		m.ResistiveOperating(env, 3.5)
	}
}

func BenchmarkMPP(b *testing.B) {
	m := bp()
	env := Env{Irradiance: 700, CellTemp: 40}
	for i := 0; i < b.N; i++ {
		m.MPP(env)
	}
}
