package pv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformStringMatchesScaledModules(t *testing.T) {
	// A 3-module string with uniform scales behaves like one module at 3×
	// the voltage.
	s := NewShadedString(BP3180N(), []float64{1, 1, 1})
	m := s.Module
	env := Env{Irradiance: 800, CellTemp: 30}
	if got, want := s.OpenCircuitVoltage(env), 3*m.OpenCircuitVoltage(env); math.Abs(got-want) > 1e-6 {
		t.Errorf("string Voc = %v, want %v", got, want)
	}
	sm, mm := s.MPP(env), m.MPP(env)
	if math.Abs(sm.P-3*mm.P)/mm.P > 0.01 {
		t.Errorf("string Pmax = %v, want ≈ %v", sm.P, 3*mm.P)
	}
	if math.Abs(sm.V-3*mm.V)/mm.V > 0.02 {
		t.Errorf("string Vmpp = %v, want ≈ %v", sm.V, 3*mm.V)
	}
}

func TestShadingCreatesMultiplePeaks(t *testing.T) {
	// One module at 30 % irradiance behind a bypass diode folds the P-V
	// curve into two local maxima.
	s := NewShadedString(BP3180N(), []float64{1, 1, 0.3})
	peaks := s.LocalMPPs(STC)
	if len(peaks) < 2 {
		t.Fatalf("%d local maxima, want ≥ 2 under partial shading", len(peaks))
	}
	global := s.MPP(STC)
	for _, p := range peaks {
		if p.P > global.P*(1+1e-6) {
			t.Errorf("local peak %.1f W exceeds reported global %.1f W", p.P, global.P)
		}
	}
	// The two dominant peaks must be well separated in voltage (the bypass
	// knee sits between them).
	if math.Abs(peaks[0].V-peaks[len(peaks)-1].V) < 10 {
		t.Errorf("peaks not separated: %+v", peaks)
	}
}

func TestShadedStringBeatsNoBypassFloor(t *testing.T) {
	// With a bypass diode the string can still harvest the two bright
	// modules (~2/3 of unshaded power at the high-current peak); without
	// one it would be dragged to the weak module's photocurrent. Verify the
	// global MPP exceeds the weak-limited bound.
	s := NewShadedString(BP3180N(), []float64{1, 1, 0.25})
	unshaded := NewShadedString(BP3180N(), []float64{1, 1, 1}).MPP(STC).P
	weakLimited := unshaded * 0.25 // all modules forced to the weak current
	got := s.MPP(STC).P
	if got <= weakLimited*1.5 {
		t.Errorf("global MPP %.1f W not clearly above weak-limited %.1f W", got, weakLimited)
	}
	if got >= unshaded {
		t.Errorf("shaded MPP %.1f W cannot exceed unshaded %.1f W", got, unshaded)
	}
}

func TestShadedStringMonotoneIV(t *testing.T) {
	s := NewShadedString(BP3180N(), []float64{1, 0.6, 0.3})
	voc := s.OpenCircuitVoltage(STC)
	prev := math.Inf(1)
	for i := 0; i <= 100; i++ {
		v := voc * float64(i) / 100
		c := s.Current(STC, v)
		if c > prev+1e-6 {
			t.Fatalf("string I-V not non-increasing at V=%.2f", v)
		}
		prev = c
	}
	if c := s.Current(STC, voc+1); c != 0 {
		t.Errorf("current beyond Voc = %v", c)
	}
}

func TestShadedStringResistiveOperating(t *testing.T) {
	s := NewShadedString(BP3180N(), []float64{1, 1, 0.4})
	prop := func(rRaw uint8) bool {
		r := 1 + float64(rRaw)/4
		v, i := s.ResistiveOperating(STC, r)
		if v < 0 || i < 0 {
			return false
		}
		// On the load line and on the curve.
		if math.Abs(i-v/r) > 1e-6*(1+i) {
			return false
		}
		return math.Abs(s.Current(STC, v)-i) < 1e-3*(1+i)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	// Edges.
	if v, i := s.ResistiveOperating(STC, math.Inf(1)); i != 0 || v <= 0 {
		t.Errorf("open circuit: %v, %v", v, i)
	}
	if _, i := s.ResistiveOperating(STC, 0); i <= 0 {
		t.Error("short circuit should carry current")
	}
	if v, i := s.ResistiveOperating(Env{0, 25}, 5); v != 0 || i != 0 {
		t.Error("dark string should be dead")
	}
}

func TestShadedStringDark(t *testing.T) {
	s := NewShadedString(BP3180N(), []float64{1, 1})
	dark := Env{Irradiance: 0, CellTemp: 25}
	if s.MPP(dark).P != 0 {
		t.Error("dark MPP should be zero")
	}
	if s.LocalMPPs(dark) != nil {
		t.Error("dark string has no local maxima")
	}
	if s.Current(dark, 5) != 0 {
		t.Error("dark current should be zero")
	}
}

func TestVoltageAtInverse(t *testing.T) {
	// VoltageAt must invert Current on the forward branch.
	m := bp()
	prop := func(iRaw uint8) bool {
		i := float64(iRaw) / 255 * 5.0 // 0..5 A
		v, ok := m.VoltageAt(STC, i)
		if !ok {
			return i > 5.0 // only very high currents may fail at STC
		}
		return math.Abs(m.Current(STC, v)-i) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	if _, ok := m.VoltageAt(STC, 50); ok {
		t.Error("current above Iph must not be forward-feasible")
	}
	if _, ok := m.VoltageAt(STC, -1); ok {
		t.Error("negative current must not be forward-feasible")
	}
	if _, ok := m.VoltageAt(Env{0, 25}, 0.1); ok {
		t.Error("dark module cannot source current")
	}
}
