package pv

// IVPoint is one sample of an I-V sweep: terminal voltage, output current,
// and the resulting power.
type IVPoint struct {
	V float64 // terminal voltage, V
	I float64 // output current, A
	P float64 // output power, W
}

// IVCurve samples the generator characteristic at n evenly spaced voltages
// from 0 to Voc inclusive under env. n must be at least 2; smaller values
// are raised to 2. This is the data behind Figures 6 and 7.
func IVCurve(g Generator, env Env, n int) []IVPoint {
	if n < 2 {
		n = 2
	}
	voc := g.OpenCircuitVoltage(env)
	pts := make([]IVPoint, n)
	for i := range pts {
		v := voc * float64(i) / float64(n-1)
		c := g.Current(env, v)
		pts[i] = IVPoint{V: v, I: c, P: v * c}
	}
	return pts
}

// UtilizationAtFixedLoad returns the fraction of the available maximum power
// a fixed resistive load R extracts under env — the quantity behind
// Figure 1, which motivates MPP tracking: a load matched at one irradiance
// loses over half the energy at another.
//
// The operating point is the intersection of the generator I-V curve with
// the load line I = V/R, found by bisection on f(V) = I_gen(V) − V/R, which
// is strictly decreasing over [0, Voc].
//
// unit: r=Ω, return=ratio
func UtilizationAtFixedLoad(g Generator, env Env, r float64) float64 {
	mpp := g.MPP(env)
	if mpp.P <= 0 || r <= 0 {
		return 0
	}
	v := OperatingVoltageResistive(g, env, r)
	return g.Power(env, v) / mpp.P
}

// OperatingVoltageResistive returns the terminal voltage at which the
// generator I-V curve intersects a resistive load line I = V/R.
//
// unit: r=Ω, return=V
func OperatingVoltageResistive(g Generator, env Env, r float64) float64 {
	if r <= 0 {
		return 0
	}
	v, _ := g.ResistiveOperating(env, r)
	return v
}
