package pv

import (
	"math"

	"solarcore/internal/mathx"
)

// ShadedString models a series string of identical modules under
// non-uniform irradiance, each protected by a bypass diode — the
// real-world condition the paper's uniform-irradiance assumption sets
// aside. When the common string current exceeds what a shaded module can
// carry, its bypass diode conducts and the module contributes only the
// diode's forward drop, which is what folds the familiar single-knee P-V
// curve into multiple local maxima.
//
// The env passed to the Generator methods is the unshaded baseline; each
// module sees env.Irradiance scaled by its entry in Scales.
type ShadedString struct {
	Module      *Module
	Scales      []float64 // per-module irradiance multipliers in (0, 1]
	BypassDropV float64   // conducting bypass diode drop (default 0.5 V)
}

var _ Generator = (*ShadedString)(nil)

// NewShadedString builds a string of len(scales) modules of the given
// parameters with the per-module irradiance scales.
func NewShadedString(p ModuleParams, scales []float64) *ShadedString {
	return &ShadedString{Module: NewModule(p), Scales: scales, BypassDropV: 0.5}
}

// PartiallyShadedModule models shading WITHIN one physical module: real
// modules (the BP3180N included) wire a bypass diode across each group of
// ~24 cells, so a shadow over one group folds even a single module's P-V
// curve into multiple maxima. The module is split into len(groupScales)
// equal bypass groups, each scaled by its entry.
func PartiallyShadedModule(p ModuleParams, groupScales []float64) *ShadedString {
	n := len(groupScales)
	if n < 1 {
		n = 1
		groupScales = []float64{1}
	}
	sub := p
	sub.Name = p.Name + "-group"
	sub.CellsInSeries = p.CellsInSeries / n
	sub.VocRef = p.VocRef / float64(n)
	sub.SeriesR = p.SeriesR / float64(n)
	return NewShadedString(sub, groupScales)
}

// moduleEnv returns the environment seen by module m.
func (s *ShadedString) moduleEnv(env Env, m int) Env {
	scale := s.Scales[m]
	if scale < 0 {
		scale = 0
	}
	return Env{Irradiance: env.Irradiance * scale, CellTemp: env.CellTemp}
}

// stringVoltage returns the string terminal voltage at common current i:
// the sum of per-module voltages, with bypassed modules contributing the
// negative diode drop. It is strictly decreasing in i.
//
// unit: i=A, return=V
func (s *ShadedString) stringVoltage(env Env, i float64) float64 {
	sum := 0.0
	for m := range s.Scales {
		if v, ok := s.Module.VoltageAt(s.moduleEnv(env, m), i); ok {
			sum += v
		} else {
			sum -= s.BypassDropV
		}
	}
	return sum
}

// maxCurrent returns the largest photocurrent in the string — the upper
// bound of the string current.
//
// unit: A
func (s *ShadedString) maxCurrent(env Env) float64 {
	imax := 0.0
	for m := range s.Scales {
		if isc := s.Module.ShortCircuitCurrent(s.moduleEnv(env, m)); isc > imax {
			imax = isc
		}
	}
	return imax
}

// OpenCircuitVoltage returns the string Voc: the sum of module Vocs (no
// bypass conducts at zero current).
//
// unit: V
func (s *ShadedString) OpenCircuitVoltage(env Env) float64 {
	sum := 0.0
	for m := range s.Scales {
		sum += s.Module.OpenCircuitVoltage(s.moduleEnv(env, m))
	}
	return sum
}

// Current returns the string current at terminal voltage v, solving the
// monotone stringVoltage relation by bisection.
//
// unit: v=V, return=A
func (s *ShadedString) Current(env Env, v float64) float64 {
	imax := s.maxCurrent(env)
	if imax <= 0 {
		return 0
	}
	if v >= s.OpenCircuitVoltage(env) {
		return 0
	}
	// stringVoltage is decreasing in i: bracket [0, imax].
	lo, hi := 0.0, imax
	if s.stringVoltage(env, hi) > v {
		return hi // even at max photocurrent the string sits above v
	}
	for iter := 0; iter < 80; iter++ {
		mid := 0.5 * (lo + hi)
		if s.stringVoltage(env, mid) > v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// Power returns the string output power at terminal voltage v.
//
// unit: v=V, return=W
func (s *ShadedString) Power(env Env, v float64) float64 {
	if v <= 0 {
		return 0
	}
	return v * s.Current(env, v)
}

// ShortCircuitCurrent returns the string current at zero terminal voltage.
//
// unit: A
func (s *ShadedString) ShortCircuitCurrent(env Env) float64 {
	return s.Current(env, 0)
}

// ResistiveOperating returns the intersection of the string characteristic
// with the load line I = V/R, which is unique because stringVoltage is
// monotone in the current.
//
// unit: r=Ω, v=V, i=A
func (s *ShadedString) ResistiveOperating(env Env, r float64) (v, i float64) {
	imax := s.maxCurrent(env)
	if imax <= 0 {
		return 0, 0
	}
	if math.IsInf(r, 1) {
		return s.OpenCircuitVoltage(env), 0
	}
	if r <= 0 {
		return 0, s.ShortCircuitCurrent(env)
	}
	// g(i) = V(i) − i·R is strictly decreasing; bracket [0, imax].
	lo, hi := 0.0, imax
	if s.stringVoltage(env, hi)-hi*r > 0 {
		return s.stringVoltage(env, hi), hi
	}
	for iter := 0; iter < 80; iter++ {
		mid := 0.5 * (lo + hi)
		if s.stringVoltage(env, mid)-mid*r > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	i = 0.5 * (lo + hi)
	return i * r, i
}

// MPP returns the GLOBAL maximum power point, found by a coarse voltage
// scan (fine enough to see every bypass knee) refined by golden-section
// search around the best bracket — the "global scan" an MPPT must perform
// under partial shading.
func (s *ShadedString) MPP(env Env) MPP {
	voc := s.OpenCircuitVoltage(env)
	if voc <= 0 {
		return MPP{}
	}
	const grid = 160
	bestIdx, bestP := 0, 0.0
	for i := 0; i <= grid; i++ {
		v := voc * float64(i) / grid
		if p := s.Power(env, v); p > bestP {
			bestIdx, bestP = i, p
		}
	}
	lo := voc * float64(maxInt(bestIdx-1, 0)) / grid
	hi := voc * float64(minInt(bestIdx+1, grid)) / grid
	v, p := mathx.GoldenMax(func(v float64) float64 { return s.Power(env, v) }, lo, hi, voc*1e-6)
	if p <= 0 {
		return MPP{}
	}
	return MPP{V: v, I: p / v, P: p}
}

// LocalMPPs returns every local maximum of the P-V curve (voltage-ordered),
// the structure that traps single-hill trackers under partial shading.
func (s *ShadedString) LocalMPPs(env Env) []MPP {
	voc := s.OpenCircuitVoltage(env)
	if voc <= 0 {
		return nil
	}
	const grid = 400
	p := make([]float64, grid+1)
	for i := 0; i <= grid; i++ {
		p[i] = s.Power(env, voc*float64(i)/grid)
	}
	// One closure for every golden-section refinement: allocating it
	// inside the loop would cost a closure per local maximum
	// (escapehint), and the objective is iteration-independent.
	power := func(v float64) float64 { return s.Power(env, v) }
	var out []MPP
	for i := 1; i < grid; i++ {
		if p[i] > p[i-1] && p[i] >= p[i+1] && p[i] > 1e-9 {
			lo := voc * float64(i-1) / grid
			hi := voc * float64(i+1) / grid
			v, pw := mathx.GoldenMax(power, lo, hi, voc*1e-6)
			out = append(out, MPP{V: v, I: pw / v, P: pw})
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
