package pv

import (
	"math"
	"testing"
	"testing/quick"
)

func bp() *Module { return NewModule(BP3180N()) }

func TestSTCCalibration(t *testing.T) {
	m := bp()
	mpp := m.MPP(STC)
	if mpp.P < 172 || mpp.P > 188 {
		t.Errorf("Pmax at STC = %.1f W, want ≈ 180 W", mpp.P)
	}
	if mpp.V < 32 || mpp.V > 40 {
		t.Errorf("Vmpp at STC = %.1f V, want ≈ 35-37 V", mpp.V)
	}
	voc := m.OpenCircuitVoltage(STC)
	if math.Abs(voc-m.P.VocRef) > 0.05 {
		t.Errorf("Voc at STC = %.2f V, want %.2f V", voc, m.P.VocRef)
	}
	isc := m.ShortCircuitCurrent(STC)
	if math.Abs(isc-m.P.IscRef) > 0.1 {
		t.Errorf("Isc at STC = %.2f A, want ≈ %.2f A", isc, m.P.IscRef)
	}
}

func TestCurrentMonotoneInVoltage(t *testing.T) {
	m := bp()
	for _, env := range []Env{STC, {800, 40}, {400, 10}, {600, 60}} {
		voc := m.OpenCircuitVoltage(env)
		prev := math.Inf(1)
		for i := 0; i <= 50; i++ {
			v := voc * float64(i) / 50
			c := m.Current(env, v)
			if c > prev+1e-9 {
				t.Fatalf("env %+v: current not non-increasing at V=%.2f (%.4f > %.4f)", env, v, c, prev)
			}
			prev = c
		}
	}
}

func TestCurrentZeroBeyondVoc(t *testing.T) {
	m := bp()
	voc := m.OpenCircuitVoltage(STC)
	if c := m.Current(STC, voc); math.Abs(c) > 1e-6 {
		t.Errorf("Current(Voc) = %v, want ~0", c)
	}
	if c := m.Current(STC, voc+5); c != 0 {
		t.Errorf("Current(Voc+5) = %v, want 0 (blocking diode)", c)
	}
}

func TestDarknessProducesNothing(t *testing.T) {
	m := bp()
	dark := Env{Irradiance: 0, CellTemp: 25}
	if m.OpenCircuitVoltage(dark) != 0 {
		t.Error("Voc in darkness should be 0")
	}
	if m.Current(dark, 10) != 0 {
		t.Error("current in darkness should be 0")
	}
	if got := m.MPP(dark); got.P != 0 {
		t.Errorf("MPP in darkness = %+v, want zero", got)
	}
}

func TestIrradianceScalesPower(t *testing.T) {
	// Figure 6: more sun, more photocurrent, MPP moves upward.
	m := bp()
	prev := 0.0
	for _, g := range []float64{200, 400, 600, 800, 1000} {
		p := m.MPP(Env{Irradiance: g, CellTemp: 25}).P
		if p <= prev {
			t.Errorf("Pmax(%v W/m²) = %.1f, not increasing", g, p)
		}
		prev = p
	}
	// Pmax is close to (slightly sublinear in) proportional scaling.
	half := m.MPP(Env{Irradiance: 500, CellTemp: 25}).P
	full := m.MPP(STC).P
	if ratio := half / full; ratio < 0.42 || ratio > 0.53 {
		t.Errorf("Pmax(500)/Pmax(1000) = %.3f, want roughly 0.42-0.53", ratio)
	}
}

func TestTemperatureDegradesPower(t *testing.T) {
	// Figure 7: hotter cell → lower Voc, slightly higher Isc, lower Pmax,
	// MPP voltage shifts left.
	m := bp()
	prevP, prevVoc, prevVmpp := math.Inf(1), math.Inf(1), math.Inf(1)
	prevIsc := 0.0
	for _, tc := range []float64{0, 25, 50, 75} {
		env := Env{Irradiance: 1000, CellTemp: tc}
		mpp := m.MPP(env)
		voc := m.OpenCircuitVoltage(env)
		isc := m.ShortCircuitCurrent(env)
		if mpp.P >= prevP {
			t.Errorf("Pmax(T=%v) = %.1f, not decreasing", tc, mpp.P)
		}
		if voc >= prevVoc {
			t.Errorf("Voc(T=%v) = %.2f, not decreasing", tc, voc)
		}
		if mpp.V >= prevVmpp {
			t.Errorf("Vmpp(T=%v) = %.2f, not shifting left", tc, mpp.V)
		}
		if isc <= prevIsc {
			t.Errorf("Isc(T=%v) = %.3f, not increasing", tc, isc)
		}
		prevP, prevVoc, prevVmpp, prevIsc = mpp.P, voc, mpp.V, isc
	}
}

func TestMPPBeatsEveryOtherVoltage(t *testing.T) {
	// Property: no sampled voltage outperforms the reported MPP.
	m := bp()
	prop := func(gRaw, tRaw, vRaw uint8) bool {
		env := Env{
			Irradiance: 100 + float64(gRaw)*4, // 100..1120 W/m²
			CellTemp:   float64(tRaw % 76),    // 0..75 °C
		}
		mpp := m.MPP(env)
		voc := m.OpenCircuitVoltage(env)
		v := voc * float64(vRaw) / 255
		return m.Power(env, v) <= mpp.P*(1+1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPowerUnimodalOnGrid(t *testing.T) {
	// P(V) rises to the MPP then falls: exactly one sign change of the
	// discrete slope on a coarse grid.
	m := bp()
	for _, env := range []Env{STC, {700, 45}, {300, 15}} {
		voc := m.OpenCircuitVoltage(env)
		changes := 0
		prevSlope := 1.0
		prevP := 0.0
		for i := 1; i <= 200; i++ {
			v := voc * float64(i) / 200
			p := m.Power(env, v)
			slope := p - prevP
			if slope*prevSlope < 0 {
				changes++
			}
			if slope != 0 {
				prevSlope = slope
			}
			prevP = p
		}
		if changes != 1 {
			t.Errorf("env %+v: %d slope sign changes, want 1 (unimodal)", env, changes)
		}
	}
}

func TestCellTemperatureNOCT(t *testing.T) {
	p := BP3180N()
	// At zero irradiance the cell sits at ambient.
	if got := p.CellTemperature(20, 0); got != 20 {
		t.Errorf("CellTemperature(20,0) = %v, want 20", got)
	}
	// At 800 W/m² and 20 °C ambient the cell reaches NOCT by definition.
	if got := p.CellTemperature(20, 800); math.Abs(got-p.NOCT) > 1e-9 {
		t.Errorf("CellTemperature(20,800) = %v, want NOCT %v", got, p.NOCT)
	}
}
