package pv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestArrayScaling(t *testing.T) {
	m := bp()
	a := NewArray(BP3180N(), 2, 3)
	mm := m.MPP(STC)
	am := a.MPP(STC)
	if math.Abs(am.V-2*mm.V) > 1e-6 {
		t.Errorf("array Vmpp = %v, want %v", am.V, 2*mm.V)
	}
	if math.Abs(am.I-3*mm.I) > 1e-6 {
		t.Errorf("array Impp = %v, want %v", am.I, 3*mm.I)
	}
	if math.Abs(am.P-6*mm.P) > 1e-6 {
		t.Errorf("array Pmax = %v, want %v", am.P, 6*mm.P)
	}
	if got, want := a.OpenCircuitVoltage(STC), 2*m.OpenCircuitVoltage(STC); math.Abs(got-want) > 1e-9 {
		t.Errorf("array Voc = %v, want %v", got, want)
	}
	if got, want := a.ShortCircuitCurrent(STC), 3*m.ShortCircuitCurrent(STC); math.Abs(got-want) > 1e-9 {
		t.Errorf("array Isc = %v, want %v", got, want)
	}
}

func TestArrayDegenerateCounts(t *testing.T) {
	a := NewArray(BP3180N(), 0, -2)
	if a.Series != 1 || a.Parallel != 1 {
		t.Errorf("counts not clamped: %d×%d", a.Series, a.Parallel)
	}
}

func TestArrayMPPConsistentWithSweep(t *testing.T) {
	// Property: the scaled MPP really is the maximum of the array P-V sweep.
	a := NewArray(BP3180N(), 1, 2)
	prop := func(gRaw uint8) bool {
		env := Env{Irradiance: 200 + float64(gRaw)*3, CellTemp: 30}
		mpp := a.MPP(env)
		voc := a.OpenCircuitVoltage(env)
		for i := 0; i <= 64; i++ {
			v := voc * float64(i) / 64
			if a.Power(env, v) > mpp.P*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIVCurveShape(t *testing.T) {
	m := bp()
	pts := IVCurve(m, STC, 101)
	if len(pts) != 101 {
		t.Fatalf("len = %d, want 101", len(pts))
	}
	if pts[0].V != 0 || pts[0].P != 0 {
		t.Errorf("first point %+v, want V=0, P=0", pts[0])
	}
	last := pts[len(pts)-1]
	if math.Abs(last.I) > 1e-6 {
		t.Errorf("last point current = %v, want ~0 at Voc", last.I)
	}
	// Current column non-increasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].I > pts[i-1].I+1e-9 {
			t.Fatalf("I-V not monotone at %d", i)
		}
	}
}

func TestIVCurveMinPoints(t *testing.T) {
	if got := len(IVCurve(bp(), STC, 0)); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}
}

func TestFixedLoadUtilizationDrops(t *testing.T) {
	// Figure 1: a resistor matched at 1000 W/m² loses more than half the
	// available energy at 400 W/m².
	m := bp()
	mpp := m.MPP(STC)
	r := mpp.V / mpp.I // matched load at STC
	if u := UtilizationAtFixedLoad(m, STC, r); u < 0.97 {
		t.Errorf("matched-load utilization at STC = %.3f, want ≈ 1", u)
	}
	low := Env{Irradiance: 400, CellTemp: 25}
	if u := UtilizationAtFixedLoad(m, low, r); u > 0.72 {
		t.Errorf("fixed-load utilization at 400 W/m² = %.3f, want significant loss", u)
	}
	if u := UtilizationAtFixedLoad(m, low, 0); u != 0 {
		t.Errorf("utilization with R=0 = %v, want 0", u)
	}
}

func TestOperatingVoltageResistive(t *testing.T) {
	m := bp()
	r := 10.0
	v := OperatingVoltageResistive(m, STC, r)
	i := m.Current(STC, v)
	if math.Abs(i-v/r) > 1e-3 {
		t.Errorf("load line mismatch: I=%.4f, V/R=%.4f", i, v/r)
	}
	if OperatingVoltageResistive(m, Env{0, 25}, r) != 0 {
		t.Error("dark panel should give zero operating voltage")
	}
}
