package pv

import (
	"math"

	"solarcore/internal/mathx"
)

// TwoDiodeModule implements the higher-fidelity equivalent circuit the
// paper mentions and sets aside (Section 2.1: "a second non-ideal diode
// can be added in parallel to the current source"): the second diode, with
// ideality factor 2, models space-charge-region recombination that matters
// at low irradiance. At standard conditions the single-diode model is
// within a couple of percent, which is why the paper's "moderate
// complexity" choice is sound — the comparison test quantifies exactly
// that.
type TwoDiodeModule struct {
	*Module
	// I02Frac sets the second diode's saturation current as a multiple of
	// the first diode's (default 1000× — recombination currents are orders
	// of magnitude larger but suppressed by the n=2 exponent).
	I02Frac float64
}

// NewTwoDiodeModule wraps module parameters with the recombination diode.
func NewTwoDiodeModule(p ModuleParams) *TwoDiodeModule {
	return &TwoDiodeModule{Module: NewModule(p), I02Frac: 1000}
}

// i02 returns the recombination diode's saturation current under env.
//
// unit: A
func (m *TwoDiodeModule) i02(env Env) float64 {
	return m.I02Frac * m.saturationCurrent(env)
}

// Current solves the two-diode equation
//
//	I = Iph − I01·(e^(Vd/NsVt) − 1) − I02·(e^(Vd/(2·NsVt)) − 1),  Vd = V + I·Rs,
//
// by guarded Newton on I, clamped at zero (blocking diode).
//
// unit: v=V, return=A
func (m *TwoDiodeModule) Current(env Env, v float64) float64 {
	i, ok := m.rawCurrent(env, v)
	if !ok || i < 0 {
		return 0
	}
	return i
}

// rawCurrent is Current without the blocking-diode clamp, for the Voc
// solve which needs the curve's true zero crossing.
//
// unit: v=V, return=A
func (m *TwoDiodeModule) rawCurrent(env Env, v float64) (float64, bool) {
	iph := m.photocurrent(env)
	if iph <= 0 {
		return 0, false
	}
	i01 := m.saturationCurrent(env)
	i02 := m.i02(env)
	vt := m.P.thermalVoltage(env.CellTemp)
	rs := m.P.SeriesR

	f := func(i float64) float64 {
		vd := v + i*rs
		return iph - i01*math.Expm1(vd/vt) - i02*math.Expm1(vd/(2*vt)) - i
	}
	df := func(i float64) float64 {
		vd := v + i*rs
		return -i01*math.Exp(vd/vt)*rs/vt - i02*math.Exp(vd/(2*vt))*rs/(2*vt) - 1
	}
	i, err := mathx.NewtonBisect(f, df, -iph-1, iph+1, 1e-12)
	if err != nil {
		return 0, false
	}
	return i, true
}

// OpenCircuitVoltage solves Current(V) = 0 for the two-diode curve (no
// closed form once the second diode participates).
//
// unit: V
func (m *TwoDiodeModule) OpenCircuitVoltage(env Env) float64 {
	if m.photocurrent(env) <= 0 {
		return 0
	}
	// The single-diode Voc upper-bounds the two-diode one (the extra diode
	// only sinks current); solve the unclamped curve's zero crossing.
	hi := m.Module.OpenCircuitVoltage(env)
	v, err := mathx.Bisect(func(v float64) float64 {
		i, _ := m.rawCurrent(env, v)
		return i
	}, 0, hi+1e-6, 1e-9)
	if err != nil {
		return hi
	}
	return v
}

// Power returns V·I(V) on the two-diode curve.
//
// unit: v=V, return=W
func (m *TwoDiodeModule) Power(env Env, v float64) float64 {
	if v <= 0 {
		return 0
	}
	return v * m.Current(env, v)
}

// MPP finds the two-diode maximum power point.
func (m *TwoDiodeModule) MPP(env Env) MPP {
	voc := m.OpenCircuitVoltage(env)
	if voc <= 0 {
		return MPP{}
	}
	v, p := mathx.GoldenMax(func(v float64) float64 { return m.Power(env, v) }, 0, voc, voc*1e-7)
	if p <= 0 {
		return MPP{}
	}
	return MPP{V: v, I: p / v, P: p}
}

// ShortCircuitCurrent returns the current at zero terminal voltage.
//
// unit: A
func (m *TwoDiodeModule) ShortCircuitCurrent(env Env) float64 {
	return m.Current(env, 0)
}

// ResistiveOperating intersects the two-diode curve with a load line by
// bisection on voltage (the curve is monotone decreasing in current).
//
// unit: r=Ω, v=V, i=A
func (m *TwoDiodeModule) ResistiveOperating(env Env, r float64) (v, i float64) {
	voc := m.OpenCircuitVoltage(env)
	if voc <= 0 {
		return 0, 0
	}
	if math.IsInf(r, 1) {
		return voc, 0
	}
	if r <= 0 {
		return 0, m.ShortCircuitCurrent(env)
	}
	lo, hi := 0.0, voc
	for iter := 0; iter < 80; iter++ {
		mid := 0.5 * (lo + hi)
		if m.Current(env, mid)-mid/r > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	v = 0.5 * (lo + hi)
	return v, v / r
}

var _ Generator = (*TwoDiodeModule)(nil)
