package obs

// Fault-injection observability (DESIGN.md §11): two extra event kinds —
// FaultEvent marking an injector's window opening and closing, and
// WatchdogEvent marking MPPT-supervision state transitions — delivered
// through the optional FaultObserver extension interface so existing
// Observer implementations keep compiling and simply miss the new
// events. The built-in observers (Nop, Multi, JSONLSink, Metrics) all
// implement the extension.

// FaultEvent phases.
const (
	// FaultBegin marks an injector's window opening at this sample.
	FaultBegin = "begin"
	// FaultEnd marks an injector's window closing at this sample.
	FaultEnd = "end"
)

// FaultEvent reports one injected fault crossing its activity-window
// edge. The engine diffs the active injector set between consecutive
// samples and emits one event per kind per edge.
type FaultEvent struct {
	// Minute is the sample time in minutes since midnight.
	Minute float64 `json:"minute"`
	// Kind is the injector spec keyword (fault.Kinds).
	Kind string `json:"kind"`
	// Intensity is the injector's severity knob in [0,1].
	Intensity float64 `json:"intensity"`
	// Phase is FaultBegin or FaultEnd.
	Phase string `json:"phase"`
}

// WatchdogEvent reports one MPPT-supervision state transition
// (fault.Mode names: tracking, suspect, fallback, recovering).
type WatchdogEvent struct {
	// Minute is the tracking period start in minutes since midnight.
	Minute float64 `json:"minute"`
	// From and To name the modes of the transition.
	From string `json:"from"`
	To   string `json:"to"`
	// Reason is a short cause, e.g. "unhealthy", "trip", "hold-elapsed",
	// "recovered", "relapse", "brownout".
	Reason string `json:"reason"`
	// FallbackBudgetW is the de-rated Fixed-Power budget a transition
	// into fallback planned against (W); zero otherwise.
	FallbackBudgetW float64 `json:"fallback_budget_w"`
}

// FaultObserver is the optional extension interface for fault-injection
// events. The engine feeds these through EmitFault/EmitWatchdog, which
// type-assert, so a plain Observer silently ignores them.
type FaultObserver interface {
	// OnFault reports one fault window edge.
	OnFault(FaultEvent)
	// OnWatchdog reports one supervision state transition.
	OnWatchdog(WatchdogEvent)
}

// EmitFault delivers a FaultEvent to o when it implements FaultObserver;
// a no-op otherwise (including for a nil Observer).
func EmitFault(o Observer, ev FaultEvent) {
	if fo, ok := o.(FaultObserver); ok {
		fo.OnFault(ev)
	}
}

// EmitWatchdog delivers a WatchdogEvent to o when it implements
// FaultObserver; a no-op otherwise (including for a nil Observer).
func EmitWatchdog(o Observer, ev WatchdogEvent) {
	if fo, ok := o.(FaultObserver); ok {
		fo.OnWatchdog(ev)
	}
}

// OnFault implements FaultObserver.
func (Nop) OnFault(FaultEvent) {}

// OnWatchdog implements FaultObserver.
func (Nop) OnWatchdog(WatchdogEvent) {}

// OnFault implements FaultObserver: the fan-out forwards to every member
// that implements the extension.
func (m multi) OnFault(ev FaultEvent) {
	for _, o := range m {
		EmitFault(o, ev)
	}
}

// OnWatchdog implements FaultObserver.
func (m multi) OnWatchdog(ev WatchdogEvent) {
	for _, o := range m {
		EmitWatchdog(o, ev)
	}
}

// OnFault implements FaultObserver.
func (s *JSONLSink) OnFault(ev FaultEvent) {
	s.emit(Event{Type: TypeFault, Fault: &ev})
}

// OnWatchdog implements FaultObserver.
func (s *JSONLSink) OnWatchdog(ev WatchdogEvent) {
	s.emit(Event{Type: TypeWatchdog, Watchdog: &ev})
}

// Fault-path metric names (DESIGN.md §11). All stay at zero — and absent
// from snapshots — on fault-free runs.
const (
	// MetricFaults counts fault window openings (FaultBegin events).
	MetricFaults = "faults_injected_total"
	// MetricBrownoutSheds counts brownout-guard load sheds.
	MetricBrownoutSheds = "brownout_sheds_total"
	// MetricWatchdogTrips counts supervision trips into fallback.
	MetricWatchdogTrips = "watchdog_trips_total"
	// MetricFallbackPeriods counts tracking periods spent in fallback.
	MetricFallbackPeriods = "watchdog_fallback_periods_total"
	// MetricRecoveryMin accumulates trip-to-recovery durations (min).
	MetricRecoveryMin = "watchdog_recovery_min_total"
	// MetricSolverFaults counts typed solver faults absorbed.
	MetricSolverFaults = "solver_faults_total"
)

// OnFault implements FaultObserver.
func (m metricsObserver) OnFault(ev FaultEvent) {
	if ev.Phase == FaultBegin {
		m.reg.Add(MetricFaults, 1)
	}
}

// OnWatchdog implements FaultObserver.
func (m metricsObserver) OnWatchdog(ev WatchdogEvent) {
	if ev.To == "fallback" && ev.From != "fallback" {
		m.reg.Add(MetricWatchdogTrips, 1)
	}
}
