// Package obs is the simulation stack's observability layer: a hook
// interface the discrete-time engine (internal/sim) and the MPPT
// controller (internal/mppt) invoke as a run unfolds, a metrics registry
// of counters/gauges/histograms with snapshot export and cross-fleet
// merging, and a JSONL event sink with a versioned, round-trip-tested
// schema.
//
// The package is stdlib-only and designed so that the disabled path is
// free: a nil Observer in sim.Config skips every hook, and the no-op
// observer (Nop) costs one dynamic call per event — benchmarked at under
// 5 % of a RunMPPT day (BenchmarkRunMPPTNopObserver vs BenchmarkRunMPPT
// at the repository root).
//
// Event semantics follow the paper's control structure: one RunStartEvent
// and one RunEndEvent bracket a day; each 10-minute tracking period opens
// with a TrackEvent from the controller (the Figure 9 perturb-and-observe
// session: final transfer ratio k, tuning steps consumed, settled load,
// per-core DVFS levels); AllocEvents record individual per-core DVFS
// moves outside the tracking session (mid-period load adaptation and the
// protective power margin of Section 4.3); TickEvents sample the tracked
// vs. available power at every simulation sub-sample — the two curves of
// Figures 13-14.
package obs

// Observer receives simulation lifecycle hooks. Implementations must be
// safe for the call pattern of one run: hooks arrive sequentially from a
// single goroutine, but distinct runs may drive distinct observers
// concurrently. Hook calls must not retain the Levels slice of a
// TrackEvent beyond the call unless they copy it.
type Observer interface {
	// OnRunStart opens a run: one call, before any other hook.
	OnRunStart(RunStartEvent)
	// OnTrack reports one MPPT tracking session (Figure 9), invoked by
	// the controller at each tracking period.
	OnTrack(TrackEvent)
	// OnAlloc reports one per-core DVFS move outside a tracking session.
	OnAlloc(AllocEvent)
	// OnTick reports one simulation sub-sample.
	OnTick(TickEvent)
	// OnRunEnd closes a run: one call, after every other hook. It is not
	// invoked when the run aborts with an error (including cancellation).
	OnRunEnd(RunEndEvent)
}

// RunStartEvent announces a starting day run.
type RunStartEvent struct {
	// Runner names the engine entry point: "MPPT", "Fixed-Power",
	// "Battery" or "BatteryBank".
	Runner string `json:"runner"`
	// Policy is the Table 6 policy name (MPPT runs) or baseline label.
	Policy string `json:"policy"`
	// Mix is the Table 5 workload mix name.
	Mix string `json:"mix"`
	// Label identifies the weather trace, e.g. "Jul@AZ".
	Label string `json:"label"`
	// Cores is the simulated core count.
	Cores int `json:"cores"`
	// StartMin and EndMin bound the simulated daytime span in minutes
	// since midnight.
	StartMin float64 `json:"start_min"`
	EndMin   float64 `json:"end_min"`
}

// TrackEvent reports one MPPT tracking session — the three-step
// perturb-and-observe loop of Figure 9 — as the controller settled it.
type TrackEvent struct {
	// Minute is the session trigger time in minutes since midnight.
	Minute float64 `json:"minute"`
	// K is the converter transfer ratio the session settled on
	// (dimensionless).
	K float64 `json:"k"`
	// Steps is the number of tuning actions (k perturbations and DVFS
	// moves) the session consumed.
	Steps int `json:"steps"`
	// Overload means the panel could not support even the minimum load;
	// the period runs on the utility.
	Overload bool `json:"overload"`
	// LoadW is the chip demand the session raised the load to (W).
	LoadW float64 `json:"load_w"`
	// SensedW is the load power as the controller's I/V sensors report
	// it (W) — differs from LoadW under injected sensor error.
	SensedW float64 `json:"sensed_w"`
	// Levels holds the per-core DVFS levels after the session
	// (mcore.Gated is -1). Copy before retaining.
	Levels []int `json:"levels"`
}

// Reasons an AllocEvent reports.
const (
	// AllocMargin is a protective-power-margin shed at the end of a
	// tracking session (Section 4.3).
	AllocMargin = "margin"
	// AllocShed is a mid-period shed: demand drifted over the budget.
	AllocShed = "shed"
	// AllocRaise is a mid-period raise: the supply recovered beyond the
	// hysteresis band.
	AllocRaise = "raise"
	// AllocRevert undoes a probing raise that overshot the budget.
	AllocRevert = "revert"
	// AllocBrownout is a brownout-guard shed: the rail voltage sagged
	// below tolerance under an injected power-path fault and the engine
	// shed load within the same sub-sample (DESIGN.md §11).
	AllocBrownout = "brownout"
)

// AllocEvent reports one per-core DVFS move performed outside a tracking
// session (the Figure 12 mid-period load adaptation, or the protective
// margin at session end).
type AllocEvent struct {
	// Minute is the move time in minutes since midnight.
	Minute float64 `json:"minute"`
	// Dir is +1 for a raise, -1 for a lower.
	Dir int `json:"dir"`
	// Reason is one of AllocMargin, AllocShed, AllocRaise, AllocRevert.
	Reason string `json:"reason"`
	// DemandW is the chip demand after the move (W).
	DemandW float64 `json:"demand_w"`
	// BudgetW is the available post-conversion solar power at the move
	// (W); zero for controller-internal moves that carry no budget.
	BudgetW float64 `json:"budget_w"`
}

// TickEvent samples one simulation sub-sample: the tracked (consumed)
// versus available power pair plotted in Figures 13-14.
type TickEvent struct {
	// Minute is the sub-sample time in minutes since midnight.
	Minute float64 `json:"minute"`
	// BudgetW is the maximal deliverable solar power after conversion (W).
	BudgetW float64 `json:"budget_w"`
	// DemandW is the chip draw (W), from whichever supply carries it.
	DemandW float64 `json:"demand_w"`
	// OnSolar reports whether the sub-sample ran on the panel.
	OnSolar bool `json:"on_solar"`
}

// RunEndEvent closes a completed day run with its headline totals.
type RunEndEvent struct {
	// Runner names the engine entry point, matching the RunStartEvent.
	Runner string `json:"runner"`
	// SolarWh and UtilityWh are the energies delivered to the chip.
	SolarWh   float64 `json:"solar_wh"`
	UtilityWh float64 `json:"utility_wh"`
	// SolarMin is the effective solar-powered duration (minutes).
	SolarMin float64 `json:"solar_min"`
	// DaytimeMin is the simulated daytime span (minutes).
	DaytimeMin float64 `json:"daytime_min"`
	// Overloads counts tracking periods that fell back to the utility.
	Overloads int `json:"overloads"`
	// Transitions counts per-core DVFS level changes over the day.
	Transitions uint64 `json:"transitions"`
	// ATSSwitches counts automatic-transfer-switch supply transitions.
	ATSSwitches int `json:"ats_switches"`

	// Fault-path counters (DESIGN.md §11). All are zero — and omitted
	// from the JSONL encoding — on fault-free runs, keeping clean traces
	// byte-identical to pre-fault-layer streams.
	//
	// FaultsInjected counts fault window openings over the run.
	FaultsInjected int `json:"faults_injected,omitempty"`
	// BrownoutSheds counts brownout-guard load sheds.
	BrownoutSheds int `json:"brownout_sheds,omitempty"`
	// WatchdogTrips counts MPPT-supervision trips into fallback.
	WatchdogTrips int `json:"watchdog_trips,omitempty"`
	// FallbackPeriods counts tracking periods run on the de-rated
	// Fixed-Power fallback budget.
	FallbackPeriods int `json:"fallback_periods,omitempty"`
	// SolverFaults counts typed solver faults absorbed instead of
	// aborting the run.
	SolverFaults int `json:"solver_faults,omitempty"`
	// RecoveryMin totals trip-to-recovery durations (minutes).
	RecoveryMin float64 `json:"recovery_min,omitempty"`
}

// Nop is the no-op Observer: every hook returns immediately. Attaching
// it (rather than nil) exercises the full hook path; the root benchmark
// BenchmarkRunMPPTNopObserver holds its overhead under 5 %.
type Nop struct{}

// OnRunStart implements Observer.
func (Nop) OnRunStart(RunStartEvent) {}

// OnTrack implements Observer.
func (Nop) OnTrack(TrackEvent) {}

// OnAlloc implements Observer.
func (Nop) OnAlloc(AllocEvent) {}

// OnTick implements Observer.
func (Nop) OnTick(TickEvent) {}

// OnRunEnd implements Observer.
func (Nop) OnRunEnd(RunEndEvent) {}

// Multi fans every hook out to each non-nil observer in order. It
// returns nil when the list has no non-nil entries and the single
// observer itself when it has exactly one, so callers can attach the
// result directly without paying for an empty fan-out.
func Multi(observers ...Observer) Observer {
	var live multi
	for _, o := range observers {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multi []Observer

// OnRunStart implements Observer.
func (m multi) OnRunStart(ev RunStartEvent) {
	for _, o := range m {
		o.OnRunStart(ev)
	}
}

// OnTrack implements Observer.
func (m multi) OnTrack(ev TrackEvent) {
	for _, o := range m {
		o.OnTrack(ev)
	}
}

// OnAlloc implements Observer.
func (m multi) OnAlloc(ev AllocEvent) {
	for _, o := range m {
		o.OnAlloc(ev)
	}
}

// OnTick implements Observer.
func (m multi) OnTick(ev TickEvent) {
	for _, o := range m {
		o.OnTick(ev)
	}
}

// OnRunEnd implements Observer.
func (m multi) OnRunEnd(ev RunEndEvent) {
	for _, o := range m {
		o.OnRunEnd(ev)
	}
}
