package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// SchemaVersion is the JSONL event-stream schema version. Every emitted
// line carries it in the "v" field; ReadEvents rejects any other value.
// Bump it only with a migration note in DESIGN.md §10.
const SchemaVersion = 1

// Event type discriminators (the "type" field of a JSONL line).
const (
	TypeRunStart = "run_start"
	TypeTrack    = "track"
	TypeAlloc    = "alloc"
	TypeTick     = "tick"
	TypeRunEnd   = "run_end"
	TypeFault    = "fault"
	TypeWatchdog = "watchdog"
)

// TypeStore is the Event.Type discriminator of a StoreEvent line.
const TypeStore = "store"

// TypeGap is the Event.Type discriminator of a GapEvent line.
const TypeGap = "gap"

// GapEvent marks a hole in a live event stream: a slow subscriber (or a
// truncated durable tail) missed Dropped events that the hub's bounded
// ring had already discarded (DESIGN.md §17). A stream carrying gap
// lines is explicitly gapped — consumers see the loss instead of a
// silently shortened sequence.
type GapEvent struct {
	// Dropped is how many consecutive events are missing before the next
	// line of the stream.
	Dropped uint64 `json:"dropped"`
}

// Store-event operation labels (StoreEvent.Op).
const (
	// StoreOpWarmStart is the one-line boot summary of a directory scan.
	StoreOpWarmStart = "warm_start"
	// StoreOpQuarantine records a torn or corrupt record moved aside.
	StoreOpQuarantine = "quarantine"
	// StoreOpEvict records a record deleted by byte-budget pressure.
	StoreOpEvict = "evict"
)

// StoreEvent is one durable-result-store lifecycle record
// (internal/store, DESIGN.md §16): warm starts, quarantines and
// byte-budget evictions, on the same versioned JSONL envelope as the
// simulation and access streams.
type StoreEvent struct {
	// Op is one of the StoreOp* labels.
	Op string `json:"op"`
	// Key is the RunSpec hash concerned; empty for directory-wide ops.
	Key string `json:"key,omitempty"`
	// Records is the record count involved (warm start: records loaded).
	Records int `json:"records,omitempty"`
	// Bytes is the on-disk byte count after the operation.
	Bytes int64 `json:"bytes,omitempty"`
	// DurMs is the operation wall time in milliseconds; zero when the
	// store runs without a clock.
	DurMs float64 `json:"dur_ms,omitempty"`
	// Detail carries the failure text of a quarantine, when known.
	Detail string `json:"detail,omitempty"`
}

// OnStore appends one store lifecycle line to the sink.
func (s *JSONLSink) OnStore(ev StoreEvent) {
	s.emit(Event{Type: TypeStore, Store: &ev})
}

// Event is the JSONL envelope: one line per hook invocation, with Type
// selecting which single payload pointer is populated. The envelope
// round-trips exactly through encoding/json (Go emits float64 with the
// shortest representation that parses back to the same value), which the
// schema test asserts.
type Event struct {
	// V is the schema version (SchemaVersion).
	V int `json:"v"`
	// Type is one of the Type* discriminators.
	Type string `json:"type"`

	RunStart *RunStartEvent `json:"run_start,omitempty"`
	Track    *TrackEvent    `json:"track,omitempty"`
	Alloc    *AllocEvent    `json:"alloc,omitempty"`
	Tick     *TickEvent     `json:"tick,omitempty"`
	RunEnd   *RunEndEvent   `json:"run_end,omitempty"`
	Fault    *FaultEvent    `json:"fault,omitempty"`
	Watchdog *WatchdogEvent `json:"watchdog,omitempty"`
	Access   *AccessEvent   `json:"access,omitempty"`
	Store    *StoreEvent    `json:"store,omitempty"`
	Gap      *GapEvent      `json:"gap,omitempty"`
}

// Validate checks the envelope invariants: a known schema version and
// exactly one payload, matching the Type discriminator.
func (e Event) Validate() error {
	if e.V != SchemaVersion {
		return fmt.Errorf("obs: event schema version %d (want %d)", e.V, SchemaVersion)
	}
	var set []string
	if e.RunStart != nil {
		set = append(set, TypeRunStart)
	}
	if e.Track != nil {
		set = append(set, TypeTrack)
	}
	if e.Alloc != nil {
		set = append(set, TypeAlloc)
	}
	if e.Tick != nil {
		set = append(set, TypeTick)
	}
	if e.RunEnd != nil {
		set = append(set, TypeRunEnd)
	}
	if e.Fault != nil {
		set = append(set, TypeFault)
	}
	if e.Watchdog != nil {
		set = append(set, TypeWatchdog)
	}
	if e.Access != nil {
		set = append(set, TypeAccess)
	}
	if e.Store != nil {
		set = append(set, TypeStore)
	}
	if e.Gap != nil {
		set = append(set, TypeGap)
	}
	if len(set) != 1 {
		return fmt.Errorf("obs: event %q carries %d payloads (want exactly 1)", e.Type, len(set))
	}
	if set[0] != e.Type {
		return fmt.Errorf("obs: event type %q does not match payload %q", e.Type, set[0])
	}
	return nil
}

// JSONLSink is an Observer that appends one JSON line per event to a
// writer. Writes are buffered; call Flush (or Close) when the run is
// done. The first write error sticks: subsequent events are dropped and
// Err/Flush/Close report it. A JSONLSink is safe for concurrent use.
type JSONLSink struct {
	mu  sync.Mutex
	buf *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink builds a sink writing to w. The caller retains ownership
// of w (Close flushes the sink but does not close w).
func NewJSONLSink(w io.Writer) *JSONLSink {
	buf := bufio.NewWriter(w)
	return &JSONLSink{buf: buf, enc: json.NewEncoder(buf)}
}

func (s *JSONLSink) emit(ev Event) {
	ev.V = SchemaVersion
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(ev)
	}
	s.mu.Unlock()
}

// OnRunStart implements Observer.
func (s *JSONLSink) OnRunStart(ev RunStartEvent) {
	s.emit(Event{Type: TypeRunStart, RunStart: &ev})
}

// OnTrack implements Observer. The Levels slice is referenced, not
// copied; the engine hands each event a fresh slice.
func (s *JSONLSink) OnTrack(ev TrackEvent) {
	s.emit(Event{Type: TypeTrack, Track: &ev})
}

// OnAlloc implements Observer.
func (s *JSONLSink) OnAlloc(ev AllocEvent) {
	s.emit(Event{Type: TypeAlloc, Alloc: &ev})
}

// OnTick implements Observer.
func (s *JSONLSink) OnTick(ev TickEvent) {
	s.emit(Event{Type: TypeTick, Tick: &ev})
}

// OnRunEnd implements Observer.
func (s *JSONLSink) OnRunEnd(ev RunEndEvent) {
	s.emit(Event{Type: TypeRunEnd, RunEnd: &ev})
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush drains the buffer and returns the first error seen.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.buf.Flush()
	}
	return s.err
}

// Close flushes the sink. It does not close the underlying writer.
func (s *JSONLSink) Close() error { return s.Flush() }

// ReadEvents decodes and validates a JSONL event stream written by
// JSONLSink, returning every event in order. It fails on the first
// malformed or schema-violating line, identifying it by number — with
// one exception: a torn final line (no trailing newline and not a valid
// event — the signature of a crash-truncated tail) returns every event
// before it together with an error wrapping io.ErrUnexpectedEOF, so
// callers can keep the salvageable prefix and test the cause with
// errors.Is. A final line that parses and validates but merely lacks its
// newline is accepted whole.
func ReadEvents(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var events []Event
	for line := 1; ; line++ {
		raw, rerr := br.ReadBytes('\n')
		torn := false
		switch {
		case rerr == io.EOF:
			if len(bytes.TrimSpace(raw)) == 0 {
				return events, nil
			}
			torn = true
		case rerr != nil:
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, rerr)
		}
		trimmed := bytes.TrimSpace(raw)
		if len(trimmed) == 0 {
			continue
		}
		var ev Event
		err := json.Unmarshal(trimmed, &ev)
		if err == nil {
			err = ev.Validate()
		}
		if err != nil {
			if torn {
				return events, fmt.Errorf("obs: jsonl line %d truncated: %w (%v)", line, io.ErrUnexpectedEOF, err)
			}
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		events = append(events, ev)
		if torn {
			return events, nil
		}
	}
}
