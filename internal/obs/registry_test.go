package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestRegistryCountersGaugesHists(t *testing.T) {
	r := NewRegistry()
	r.Add("runs_total", 1)
	r.Add("runs_total", 2)
	r.Set("k", 3.25)
	r.Set("k", 4.5)
	r.Observe("steps", 0.5)
	r.Observe("steps", 50)
	r.Observe("steps", 1e6) // overflow bucket

	s := r.Snapshot()
	if got := s.Counters["runs_total"]; got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	if got := s.Gauges["k"]; got != 4.5 {
		t.Errorf("gauge = %v, want last-set 4.5", got)
	}
	h := s.Histograms["steps"]
	if h.Count != 3 || h.Min != 0.5 || h.Max != 1e6 {
		t.Errorf("hist = %+v", h)
	}
	if want := 0.5 + 50 + 1e6; h.Sum != want {
		t.Errorf("hist sum = %v, want %v", h.Sum, want)
	}
	if len(h.Buckets) != len(DefaultBounds)+1 {
		t.Fatalf("bucket count = %d, want %d", len(h.Buckets), len(DefaultBounds)+1)
	}
	if h.Buckets[len(h.Buckets)-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", h.Buckets[len(h.Buckets)-1])
	}
	if got, want := h.Mean(), (0.5+50+1e6)/3; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

func TestRegistryNaNObservationDropped(t *testing.T) {
	r := NewRegistry()
	r.Observe("h", math.NaN())
	r.Observe("h", 2)
	h := r.Snapshot().Histograms["h"]
	if h.Count != 1 || h.Sum != 2 {
		t.Errorf("NaN not dropped: %+v", h)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Add("c", 1)
	s := r.Snapshot()
	s.Counters["c"] = 99
	if got := r.Snapshot().Counters["c"]; got != 1 {
		t.Errorf("registry mutated through snapshot: %v", got)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := NewRegistry()
	a.Add("solar_wh_total", 100)
	a.Set("node00_soc", 0.8)
	a.Observe("wall_ms", 5)
	b := NewRegistry()
	b.Add("solar_wh_total", 50)
	b.Set("node01_soc", 0.6)
	b.Observe("wall_ms", 500)

	m := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if got := m.Counters["solar_wh_total"]; got != 150 {
		t.Errorf("merged counter = %v, want 150", got)
	}
	if m.Gauges["node00_soc"] != 0.8 || m.Gauges["node01_soc"] != 0.6 {
		t.Errorf("merged gauges = %v", m.Gauges)
	}
	h := m.Histograms["wall_ms"]
	if h.Count != 2 || h.Min != 5 || h.Max != 500 {
		t.Errorf("merged hist = %+v", h)
	}
	var total uint64
	for _, c := range h.Buckets {
		total += c
	}
	if total != 2 {
		t.Errorf("merged bucket total = %d, want 2", total)
	}
}

func TestMergeSnapshotsEmptyHistogram(t *testing.T) {
	a := NewRegistry()
	a.Observe("h", 3)
	empty := Snapshot{Histograms: map[string]HistSnapshot{"h": {}}}
	m := MergeSnapshots(a.Snapshot(), empty)
	if h := m.Histograms["h"]; h.Count != 1 || h.Min != 3 || h.Max != 3 {
		t.Errorf("merge with empty hist = %+v", h)
	}
}

func TestSnapshotWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add("ticks_total", 7)
	r.Set("track_k", 2.125)
	r.Observe("track_steps", 12)
	want := r.Snapshot()

	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("c", 1)
				r.Set("g", float64(i))
				r.Observe("h", float64(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8000 {
		t.Errorf("counter = %v, want 8000", s.Counters["c"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Errorf("hist count = %v, want 8000", s.Histograms["h"].Count)
	}
}
