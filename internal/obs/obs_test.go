package obs

import (
	"math"
	"testing"
)

// recorder counts hook invocations.
type recorder struct {
	starts, tracks, allocs, ticks, ends int
}

func (r *recorder) OnRunStart(RunStartEvent) { r.starts++ }
func (r *recorder) OnTrack(TrackEvent)       { r.tracks++ }
func (r *recorder) OnAlloc(AllocEvent)       { r.allocs++ }
func (r *recorder) OnTick(TickEvent)         { r.ticks++ }
func (r *recorder) OnRunEnd(RunEndEvent)     { r.ends++ }

func TestMultiFansOut(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	m := Multi(a, nil, b)
	drive(m)
	for _, r := range []*recorder{a, b} {
		if r.starts != 1 || r.tracks != 1 || r.allocs != 1 || r.ticks != 1 || r.ends != 1 {
			t.Errorf("recorder = %+v, want one of each", r)
		}
	}
}

func TestMultiCollapses(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live observers should be nil")
	}
	r := &recorder{}
	if got := Multi(nil, r); got != Observer(r) {
		t.Errorf("Multi of one observer should return it directly, got %T", got)
	}
}

func TestNopImplementsObserver(t *testing.T) {
	var o Observer = Nop{}
	drive(o) // must not panic
}

func TestMetricsObserver(t *testing.T) {
	reg := NewRegistry()
	m := Metrics(reg)
	drive(m)
	m.OnTrack(TrackEvent{Minute: 310, K: 2.5, Steps: 7, Overload: true})
	m.OnTick(TickEvent{Minute: 302, BudgetW: 50, DemandW: 60, OnSolar: false})
	m.OnAlloc(AllocEvent{Minute: 303, Dir: +1, Reason: AllocRaise})

	s := reg.Snapshot()
	wantCounters := map[string]float64{
		MetricRuns:        1,
		MetricTicks:       2,
		MetricSolarTicks:  1,
		MetricTracks:      2,
		MetricOverloads:   1,
		MetricAllocs:      2,
		MetricAllocRaises: 1,
		MetricAllocLowers: 1,
		MetricSolarWh:     400.125,
		MetricUtilityWh:   20.5,
		MetricSolarMin:    500,
		MetricTransitions: 1234,
		MetricATSSwitches: 4,
	}
	for name, want := range wantCounters {
		if got := s.Counters[name]; math.Abs(got-want) > 1e-9 {
			t.Errorf("counter %s = %v, want %v", name, got, want)
		}
	}
	if got := s.Gauges[MetricTrackK]; got != 2.5 {
		t.Errorf("gauge %s = %v, want 2.5 (last session)", MetricTrackK, got)
	}
	if h := s.Histograms[MetricTrackSteps]; h.Count != 2 || h.Sum != 41+7 {
		t.Errorf("hist %s = %+v", MetricTrackSteps, h)
	}
	// The solar tick in drive(): |49.5-48.75|/49.5.
	h := s.Histograms[MetricTickErr]
	if h.Count != 1 || math.Abs(h.Sum-0.75/49.5) > 1e-12 {
		t.Errorf("hist %s = %+v", MetricTickErr, h)
	}
}
