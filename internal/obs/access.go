package obs

// HTTP-serving observability (DESIGN.md §12): solard's access log rides
// the same versioned JSONL envelope as the simulation event stream, so
// one ReadEvents call decodes either (or a mixed file). AccessEvent is
// not part of the Observer interface — requests are not simulation
// lifecycle hooks — and is instead emitted directly on a JSONLSink via
// OnAccess.

// TypeAccess is the Event.Type discriminator of an AccessEvent line.
const TypeAccess = "access"

// Cache-disposition labels an AccessEvent.Cache carries (empty for
// endpoints that run no simulation).
const (
	// CacheHit means the response was replayed from the LRU result cache.
	CacheHit = "hit"
	// CacheMiss means the request ran (and populated the cache).
	CacheMiss = "miss"
	// CacheCoalesced means the request joined an identical in-flight run.
	CacheCoalesced = "coalesced"
	// CacheCheckpoint means a sweep cell was restored from the router's
	// sweep checkpoint instead of being re-fetched (internal/route).
	CacheCheckpoint = "checkpoint"
)

// AccessEvent is one structured access-log record of the solard HTTP
// server: one line per completed request.
type AccessEvent struct {
	// Method and Path identify the request route.
	Method string `json:"method"`
	Path   string `json:"path"`
	// Status is the HTTP status code sent.
	Status int `json:"status"`
	// DurMs is the handler wall time in milliseconds; zero when the
	// server runs without a clock (serve.Config.Clock).
	DurMs float64 `json:"dur_ms"`
	// Bytes is the response body size.
	Bytes int `json:"bytes"`
	// Cache is the cache disposition (CacheHit, CacheMiss,
	// CacheCoalesced) of simulation endpoints; empty otherwise.
	Cache string `json:"cache,omitempty"`
	// Remote is the client address, when known.
	Remote string `json:"remote,omitempty"`
}

// OnAccess appends one access-log line to the sink.
func (s *JSONLSink) OnAccess(ev AccessEvent) {
	s.emit(Event{Type: TypeAccess, Access: &ev})
}
