package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
)

// DefaultBounds are the histogram bucket upper bounds every Registry
// histogram uses: decade steps covering the magnitudes this simulator
// produces (sub-millisecond wall times up to multi-kilowatt-hour
// energies). A value v lands in the first bucket whose bound is >= v;
// values above the last bound land in the implicit overflow bucket, so a
// HistSnapshot has len(DefaultBounds)+1 buckets. One shared bound set
// keeps snapshots from different registries mergeable.
var DefaultBounds = []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000, 10000}

// Registry is a named-metric store: monotonic counters, last-value
// gauges and fixed-bucket histograms. All methods are safe for
// concurrent use. Metric names are flat strings; the conventions the
// simulation stack uses are documented in DESIGN.md §10.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*hist
}

type hist struct {
	count   uint64
	sum     float64
	min     float64
	max     float64
	buckets []uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		hists:    map[string]*hist{},
	}
}

// Add increments the named counter by delta. Counters are monotonic by
// convention; Add does not enforce a sign.
func (r *Registry) Add(name string, delta float64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set stores v as the named gauge's current value.
func (r *Registry) Set(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe records v into the named histogram. NaN observations are
// dropped (they would poison sum/min/max); ±Inf saturates into the
// overflow or first bucket.
func (r *Registry) Observe(name string, v float64) {
	if math.IsNaN(v) {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &hist{min: math.Inf(1), max: math.Inf(-1), buckets: make([]uint64, len(DefaultBounds)+1)}
		r.hists[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	idx := len(DefaultBounds) // overflow bucket
	for i, bound := range DefaultBounds {
		if v <= bound {
			idx = i
			break
		}
	}
	h.buckets[idx]++
	r.mu.Unlock()
}

// Snapshot is a consistent point-in-time export of a Registry, suitable
// for JSON encoding and cross-fleet merging.
type Snapshot struct {
	Counters   map[string]float64      `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot exports one histogram. Buckets[i] counts observations in
// (Bounds[i-1], Bounds[i]] against the package-wide DefaultBounds; the
// final element is the overflow bucket. Min and Max are zero when Count
// is zero.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []uint64 `json:"buckets"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot exports the registry's current state. The returned maps are
// copies; mutating them does not affect the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]float64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		hs := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			Buckets: append([]uint64(nil), h.buckets...)}
		if h.count == 0 {
			hs.Min, hs.Max = 0, 0
		}
		s.Histograms[k] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (expvar-style dump;
// encoding/json emits map keys sorted, so the output is deterministic).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// MergeSnapshots aggregates registry snapshots across a fleet: counters
// and histogram buckets sum, histogram Min/Max widen, and gauges copy
// with the later snapshot winning on a key conflict — prefix gauge names
// per node when every value must survive the merge.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, h := range s.Histograms {
			out.Histograms[k] = mergeHist(out.Histograms[k], h)
		}
	}
	return out
}

func mergeHist(a, b HistSnapshot) HistSnapshot {
	if a.Count == 0 {
		b.Buckets = append([]uint64(nil), b.Buckets...)
		return b
	}
	if b.Count == 0 {
		return a
	}
	m := HistSnapshot{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   math.Min(a.Min, b.Min),
		Max:   math.Max(a.Max, b.Max),
	}
	n := len(a.Buckets)
	if len(b.Buckets) > n {
		n = len(b.Buckets)
	}
	m.Buckets = make([]uint64, n)
	for i := range m.Buckets {
		if i < len(a.Buckets) {
			m.Buckets[i] += a.Buckets[i]
		}
		if i < len(b.Buckets) {
			m.Buckets[i] += b.Buckets[i]
		}
	}
	return m
}
