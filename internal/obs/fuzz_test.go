package obs_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"solarcore/internal/obs"
)

// FuzzReadEvents fuzzes the JSONL decoder with arbitrary byte streams:
// whatever arrives — truncated lines, duplicate payloads, wrong versions,
// binary garbage — ReadEvents must either fail cleanly or return events
// that all satisfy the envelope invariants. It must never panic.
func FuzzReadEvents(f *testing.F) {
	// A valid line of each payload family, plus the classic breakages.
	f.Add(`{"v":1,"type":"run_start","run_start":{}}`)
	f.Add(`{"v":1,"type":"access","access":{"method":"GET","path":"/healthz","status":200,"dur_ms":0.1,"bytes":16}}`)
	f.Add(`{"v":1,"type":"run_end","run_end":{}}` + "\n" + `{"v":1,"type":"fault","fault":{}}`)
	f.Add(`{"v":2,"type":"tick","tick":{}}`)               // wrong schema version
	f.Add(`{"v":1,"type":"tick"}`)                         // no payload
	f.Add(`{"v":1,"type":"tick","tick":{},"alloc":{}}`)    // two payloads
	f.Add(`{"v":1,"type":"alloc","tick":{}}`)              // mismatched payload
	f.Add(`{"v":1,"type":"access","access":{"status":`)    // truncated mid-value
	f.Add(`{"v":1,"type":"watchdog","watchdog":{}}{"v":1`) // trailing fragment
	f.Add("\x00\x01\x02 not json at all")
	f.Add(`[]`)
	f.Add(`{"v":1,"type":"track","track":{"levels":[0.5,1.5]}}`)
	// Torn tails: a valid prefix followed by a crash-truncated final line
	// (no trailing newline) must salvage the prefix with io.ErrUnexpectedEOF.
	f.Add(`{"v":1,"type":"run_end","run_end":{}}` + "\n" + `{"v":1,"type":"tick","tick":{"minu`)
	f.Add(`{"v":1,"type":"gap","gap":{"dropped":3}}` + "\n" + `{"v":1,`)
	f.Fuzz(func(t *testing.T, line string) {
		// Whether ReadEvents fails or salvages a torn tail, every event it
		// hands back must satisfy the envelope invariants.
		events, err := obs.ReadEvents(strings.NewReader(line))
		for i, ev := range events {
			if verr := ev.Validate(); verr != nil {
				t.Fatalf("ReadEvents returned event %d that fails Validate (err=%v): %v\ninput: %q",
					i, err, verr, line)
			}
		}
		if err != nil && len(events) > 0 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("partial events with a non-torn error %v\ninput: %q", err, line)
		}
	})
}

// TestAccessEventRoundTrip checks an access-log line written by OnAccess
// survives ReadEvents bit-for-bit.
func TestAccessEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	want := obs.AccessEvent{
		Method: "POST", Path: "/v1/run", Status: 200,
		DurMs: 12.5, Bytes: 4096, Cache: obs.CacheCoalesced, Remote: "127.0.0.1:9",
	}
	sink.OnAccess(want)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 1 || events[0].Type != obs.TypeAccess || events[0].Access == nil {
		t.Fatalf("decoded %d events, want one %s", len(events), obs.TypeAccess)
	}
	if got := *events[0].Access; got != want {
		t.Errorf("round trip changed the event:\ngot  %+v\nwant %+v", got, want)
	}
}
