package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// drive sends one of each event through an Observer in run order.
func drive(o Observer) {
	o.OnRunStart(RunStartEvent{Runner: "MPPT", Policy: "MPPT&Opt", Mix: "HM2",
		Label: "Jul@AZ", Cores: 8, StartMin: 300, EndMin: 1140})
	o.OnTrack(TrackEvent{Minute: 300, K: 3.0625, Steps: 41, LoadW: 55.5,
		SensedW: 55.125, Levels: []int{3, 3, -1, 2, 0, 1, 3, 2}})
	o.OnAlloc(AllocEvent{Minute: 301, Dir: -1, Reason: AllocShed, DemandW: 50.25, BudgetW: 49.5})
	o.OnTick(TickEvent{Minute: 301, BudgetW: 49.5, DemandW: 48.75, OnSolar: true})
	o.OnRunEnd(RunEndEvent{Runner: "MPPT", SolarWh: 400.125, UtilityWh: 20.5,
		SolarMin: 500, DaytimeMin: 840, Overloads: 2, Transitions: 1234, ATSSwitches: 4})
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	drive(sink)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	wantTypes := []string{TypeRunStart, TypeTrack, TypeAlloc, TypeTick, TypeRunEnd}
	for i, ev := range events {
		if ev.Type != wantTypes[i] {
			t.Errorf("event %d type = %q, want %q", i, ev.Type, wantTypes[i])
		}
		if ev.V != SchemaVersion {
			t.Errorf("event %d version = %d, want %d", i, ev.V, SchemaVersion)
		}
	}

	// Re-encoding the decoded events must reproduce the stream byte for
	// byte: the schema round-trips exactly.
	var buf2 bytes.Buffer
	enc := json.NewEncoder(&buf2)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	var buf1 bytes.Buffer
	sink1 := NewJSONLSink(&buf1)
	drive(sink1)
	if err := sink1.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Errorf("re-encoded stream differs from original:\n%s\nvs\n%s", buf1.Bytes(), buf2.Bytes())
	}

	// Field-level round trip of a representative payload.
	want := TrackEvent{Minute: 300, K: 3.0625, Steps: 41, LoadW: 55.5,
		SensedW: 55.125, Levels: []int{3, 3, -1, 2, 0, 1, 3, 2}}
	if got := events[1].Track; got == nil || !reflect.DeepEqual(*got, want) {
		t.Errorf("track payload = %+v, want %+v", got, want)
	}
}

func TestStoreEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.OnStore(StoreEvent{Op: StoreOpWarmStart, Records: 12, Bytes: 4096, DurMs: 1.5})
	sink.OnStore(StoreEvent{Op: StoreOpQuarantine, Key: "abc123", Detail: "checksum mismatch"})
	sink.OnStore(StoreEvent{Op: StoreOpEvict, Key: "def456", Bytes: 2048})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Type != TypeStore || ev.Store == nil {
			t.Fatalf("event %d = %+v, want a %q payload", i, ev, TypeStore)
		}
	}
	want := StoreEvent{Op: StoreOpWarmStart, Records: 12, Bytes: 4096, DurMs: 1.5}
	if got := *events[0].Store; got != want {
		t.Errorf("warm-start payload = %+v, want %+v", got, want)
	}
	if events[1].Store.Detail != "checksum mismatch" {
		t.Errorf("quarantine detail = %q, want the failure text", events[1].Store.Detail)
	}
}

func TestEventValidate(t *testing.T) {
	tick := &TickEvent{Minute: 1}
	cases := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"valid", Event{V: SchemaVersion, Type: TypeTick, Tick: tick}, true},
		{"bad version", Event{V: 99, Type: TypeTick, Tick: tick}, false},
		{"no payload", Event{V: SchemaVersion, Type: TypeTick}, false},
		{"two payloads", Event{V: SchemaVersion, Type: TypeTick, Tick: tick, Alloc: &AllocEvent{}}, false},
		{"mismatched type", Event{V: SchemaVersion, Type: TypeTrack, Tick: tick}, false},
	}
	for _, c := range cases {
		if err := c.ev.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%t", c.name, err, c.ok)
		}
	}
}

func TestReadEventsRejectsMalformedLine(t *testing.T) {
	in := `{"v":1,"type":"tick","tick":{"minute":1,"budget_w":2,"demand_w":1,"on_solar":true}}
{"v":1,"type":"tick"}
`
	_, err := ReadEvents(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 validation error, got %v", err)
	}
}

func TestReadEventsTornFinalLine(t *testing.T) {
	valid := `{"v":1,"type":"tick","tick":{"minute":1,"budget_w":2,"demand_w":1,"on_solar":true}}`
	cases := []struct {
		name string
		in   string
		want int  // events salvaged
		torn bool // error wraps io.ErrUnexpectedEOF
	}{
		// A crash mid-write leaves a half line with no trailing newline:
		// the intact prefix is salvageable, the cause is identifiable.
		{"truncated mid-value", valid + "\n" + `{"v":1,"type":"tick","tick":{"minu`, 1, true},
		{"truncated mid-envelope", valid + "\n" + valid + "\n" + `{"v":1,`, 2, true},
		{"torn only line", `{"v":1,"ty`, 0, true},
		// A final line that parses whole but merely lost its newline is a
		// complete stream, not a torn one.
		{"valid line missing newline", valid + "\n" + valid, 2, false},
		{"single valid line missing newline", valid, 1, false},
	}
	for _, c := range cases {
		events, err := ReadEvents(strings.NewReader(c.in))
		if c.torn {
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("%s: err = %v, want io.ErrUnexpectedEOF", c.name, err)
			}
		} else if err != nil {
			t.Errorf("%s: err = %v, want nil", c.name, err)
		}
		if len(events) != c.want {
			t.Errorf("%s: salvaged %d events, want %d", c.name, len(events), c.want)
		}
		for i, ev := range events {
			if verr := ev.Validate(); verr != nil {
				t.Errorf("%s: salvaged event %d invalid: %v", c.name, i, verr)
			}
		}
	}
	// Mid-file corruption (the bad line has a newline after it) stays a
	// hard error: only a torn *tail* is salvage-worthy.
	if _, err := ReadEvents(strings.NewReader(`{"v":1,` + "\n" + valid + "\n")); err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-file corruption: err = %v, want hard non-EOF error", err)
	}
}

type failWriter struct{ calls int }

var errBoom = errors.New("boom")

func (f *failWriter) Write(p []byte) (int, error) { f.calls++; return 0, errBoom }

func TestJSONLSinkStickyError(t *testing.T) {
	// A tiny bufio buffer forces the write through to the failing writer.
	sink := NewJSONLSink(&failWriter{})
	for i := 0; i < 5000; i++ { // enough volume to overflow the buffer
		sink.OnTick(TickEvent{Minute: float64(i)})
	}
	if err := sink.Err(); !errors.Is(err, errBoom) {
		t.Errorf("Err() = %v, want %v", err, errBoom)
	}
	if err := sink.Close(); !errors.Is(err, errBoom) {
		t.Errorf("Close() = %v, want sticky %v", err, errBoom)
	}
}
