package obs

// Metric names the Metrics observer maintains (DESIGN.md §10). Counters
// end in _total or carry their unit; histogram and gauge names carry
// their unit or declare themselves dimensionless.
const (
	// MetricRuns counts completed runs (RunEndEvents).
	MetricRuns = "runs_total"
	// MetricTicks and MetricSolarTicks count simulation sub-samples and
	// the subset that ran on the panel.
	MetricTicks      = "ticks_total"
	MetricSolarTicks = "solar_ticks_total"
	// MetricTracks and MetricOverloads count MPPT tracking sessions and
	// the subset that overloaded to the utility.
	MetricTracks    = "tracks_total"
	MetricOverloads = "track_overloads_total"
	// MetricAllocs counts per-core DVFS moves outside tracking sessions;
	// the raise/lower variants split them by direction.
	MetricAllocs      = "allocs_total"
	MetricAllocRaises = "allocs_raise_total"
	MetricAllocLowers = "allocs_lower_total"
	// MetricSolarWh / MetricUtilityWh / MetricSolarMin accumulate the
	// RunEndEvent energy and duration totals (Wh, Wh, min).
	MetricSolarWh   = "solar_wh_total"
	MetricUtilityWh = "utility_wh_total"
	MetricSolarMin  = "solar_min_total"
	// MetricTransitions and MetricATSSwitches accumulate DVFS level
	// changes and transfer-switch transitions.
	MetricTransitions = "dvfs_transitions_total"
	MetricATSSwitches = "ats_switches_total"
	// MetricTrackSteps is a histogram of tuning actions per tracking
	// session (count).
	MetricTrackSteps = "track_steps"
	// MetricTickErr is a histogram of the per-tick relative tracking
	// error |budget−demand|/budget over solar-powered ticks (ratio).
	MetricTickErr = "tick_err_ratio"
	// MetricTrackK is a gauge holding the last settled transfer ratio
	// (dimensionless).
	MetricTrackK = "track_k"
)

// Metrics returns an Observer that folds events into reg under the
// Metric* names, giving any run an expvar-style summary without storing
// the event stream. The observer inherits the registry's concurrency
// safety.
func Metrics(reg *Registry) Observer { return metricsObserver{reg} }

type metricsObserver struct{ reg *Registry }

// OnRunStart implements Observer.
func (metricsObserver) OnRunStart(RunStartEvent) {}

// OnTrack implements Observer.
func (m metricsObserver) OnTrack(ev TrackEvent) {
	m.reg.Add(MetricTracks, 1)
	if ev.Overload {
		m.reg.Add(MetricOverloads, 1)
	}
	m.reg.Observe(MetricTrackSteps, float64(ev.Steps))
	m.reg.Set(MetricTrackK, ev.K)
}

// OnAlloc implements Observer.
func (m metricsObserver) OnAlloc(ev AllocEvent) {
	m.reg.Add(MetricAllocs, 1)
	if ev.Dir > 0 {
		m.reg.Add(MetricAllocRaises, 1)
	} else {
		m.reg.Add(MetricAllocLowers, 1)
	}
}

// OnTick implements Observer.
func (m metricsObserver) OnTick(ev TickEvent) {
	m.reg.Add(MetricTicks, 1)
	if ev.OnSolar {
		m.reg.Add(MetricSolarTicks, 1)
		if ev.BudgetW > 0 {
			err := ev.BudgetW - ev.DemandW
			if err < 0 {
				err = -err
			}
			m.reg.Observe(MetricTickErr, err/ev.BudgetW)
		}
	}
}

// OnRunEnd implements Observer.
func (m metricsObserver) OnRunEnd(ev RunEndEvent) {
	m.reg.Add(MetricRuns, 1)
	m.reg.Add(MetricSolarWh, ev.SolarWh)
	m.reg.Add(MetricUtilityWh, ev.UtilityWh)
	m.reg.Add(MetricSolarMin, ev.SolarMin)
	m.reg.Add(MetricTransitions, float64(ev.Transitions))
	m.reg.Add(MetricATSSwitches, float64(ev.ATSSwitches))
	// Fault-path counters are only touched when non-zero so they stay
	// absent from clean-run snapshots (an Add materialises the counter).
	if ev.BrownoutSheds > 0 {
		m.reg.Add(MetricBrownoutSheds, float64(ev.BrownoutSheds))
	}
	if ev.FallbackPeriods > 0 {
		m.reg.Add(MetricFallbackPeriods, float64(ev.FallbackPeriods))
	}
	if ev.SolverFaults > 0 {
		m.reg.Add(MetricSolverFaults, float64(ev.SolverFaults))
	}
	if ev.RecoveryMin > 0 {
		m.reg.Add(MetricRecoveryMin, ev.RecoveryMin)
	}
}
