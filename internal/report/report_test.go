package report

import (
	"strings"
	"testing"

	"solarcore/internal/exp"
)

func TestBuildReport(t *testing.T) {
	l := exp.NewLab(exp.Options{Quick: true})
	doc := Build(l, true)

	for _, want := range []string{
		"<!DOCTYPE html>", "</html>",
		"Headlines", "Figure 1", "Table 7", "Figure 21",
		"Ablations", "Conventional MPPT", "Forecast study",
		"<svg", "</svg>",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every opened SVG closes.
	if o, c := strings.Count(doc, "<svg"), strings.Count(doc, "</svg>"); o != c || o < 10 {
		t.Errorf("svg balance: %d open, %d close", o, c)
	}
	// Every opened table closes.
	if o, c := strings.Count(doc, "<table>"), strings.Count(doc, "</table>"); o != c || o < 5 {
		t.Errorf("table balance: %d open, %d close", o, c)
	}
	// No unescaped policy ampersands leak into text nodes (MPPT&Opt must
	// appear escaped).
	if strings.Contains(doc, ">MPPT&Opt<") {
		t.Error("unescaped ampersand in HTML text")
	}
}

func TestBuildReportWithoutAblations(t *testing.T) {
	l := exp.NewLab(exp.Options{Quick: true})
	doc := Build(l, false)
	if strings.Contains(doc, "Forecast study") {
		t.Error("ablations leaked into base report")
	}
	if !strings.Contains(doc, "Figure 18") {
		t.Error("core figures missing")
	}
}
