// Package report assembles the full evaluation into one self-contained
// HTML document: every paper figure as an inline SVG chart (package viz),
// every table as an HTML table, plus the headline comparison — the
// artifact a reader opens instead of re-running the harness.
package report

import (
	"fmt"
	"html"
	"strings"

	"solarcore/internal/atmos"
	"solarcore/internal/exp"
	"solarcore/internal/mathx"
	"solarcore/internal/viz"
)

// Build regenerates every experiment through the lab and renders the
// report. Pass withAblations to include the design-choice sweeps.
func Build(l *exp.Lab, withAblations bool) string {
	var b strings.Builder
	b.WriteString(htmlHead)
	b.WriteString("<h1>SolarCore — evaluation report</h1>\n")
	b.WriteString("<p>Reproduction of <em>SolarCore: Solar Energy Driven Multi-core Architecture\nPower Management</em> (HPCA 2011). Regenerated deterministically by <code>cmd/experiments -html</code>.</p>\n")

	l.Prefetch()

	section(&b, "Headlines", headlinesTable(exp.Headlines(l)))
	section(&b, "Figure 1 — fixed-load utilization vs irradiance", figure1Chart(exp.Figure1()))
	section(&b, "Figures 6 &amp; 7 — module P-V families", curveChart(exp.Figure6(128))+curveChart(exp.Figure7(128)))
	section(&b, "Figures 13 &amp; 14 — MPP tracking accuracy",
		trackingChart(exp.Figure13(l))+trackingChart(exp.Figure14(l)))
	section(&b, "Table 7 — relative tracking error", table7HTML(exp.Table7(l)))
	section(&b, "Figure 15 — duration vs power-transfer threshold", figure15Charts(exp.Figure15(l)))
	section(&b, "Figures 16 &amp; 17 — fixed budgets vs SolarCore",
		fixedSweepChart(exp.Figure16(l))+fixedSweepChart(exp.Figure17(l)))
	section(&b, "Figure 18 — energy utilization vs battery bands", figure18Charts(exp.Figure18(l)))
	section(&b, "Figure 19 — effective operation duration", figure19Chart(exp.Figure19(l)))
	section(&b, "Figure 20 — utilization vs duration bucket", figure20Chart(exp.Figure20(l)))
	section(&b, "Figure 21 — normalized performance", figure21Chart(exp.Figure21(l)))

	if withAblations {
		abl := []exp.AblationResult{
			exp.AblationMargin(l),
			exp.AblationTrackingPeriod(l),
			exp.AblationDVFSGranularity(l),
			exp.AblationDeltaK(l),
			exp.AblationSensorNoise(l),
			exp.AblationEventTracking(l),
		}
		var parts []string
		for _, a := range abl {
			parts = append(parts, ablationTable(a))
		}
		section(&b, "Ablations", strings.Join(parts, "\n"))
		section(&b, "Conventional MPPT vs SolarCore", trackerTable(exp.TrackerComparison(l)))
		section(&b, "Forecast study", forecastTable(exp.ForecastStudy(l)))
		section(&b, "Cluster consolidation", consolidationTable(exp.ConsolidationStudy()))
		section(&b, "Sustainability", sustainabilityTable(exp.Sustainability(l)))
		section(&b, "Mount study", mountTable(exp.MountStudy(l)))
	}

	b.WriteString("</main></body></html>\n")
	return b.String()
}

const htmlHead = `<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>SolarCore evaluation report</title>
<style>
body{font-family:system-ui,-apple-system,sans-serif;margin:0;background:#fafafa;color:#222}
main{max-width:1000px;margin:0 auto;padding:24px}
h1{font-size:24px} h2{font-size:18px;margin-top:36px;border-bottom:1px solid #ddd;padding-bottom:4px}
table{border-collapse:collapse;font-size:13px;margin:12px 0}
th,td{border:1px solid #ddd;padding:4px 10px;text-align:right}
th{background:#f0f0f0} td:first-child,th:first-child{text-align:left}
svg{margin:8px 8px 8px 0;background:#fff;border:1px solid #eee}
</style></head><body><main>
`

func section(b *strings.Builder, title, body string) {
	fmt.Fprintf(b, "<h2>%s</h2>\n%s\n", title, body)
}

// htmlTable renders headers and rows.
func htmlTable(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("<table><tr>")
	for _, h := range headers {
		fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(h))
	}
	b.WriteString("</tr>\n")
	for _, row := range rows {
		b.WriteString("<tr>")
		for _, cell := range row {
			fmt.Fprintf(&b, "<td>%s</td>", html.EscapeString(cell))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>")
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func headlinesTable(h exp.HeadlinesResult) string {
	return htmlTable(
		[]string{"claim", "paper", "measured"},
		[][]string{
			{"average green-energy utilization", "82%", pct(h.AvgUtilization)},
			{"MPPT&Opt vs MPPT&RR (PTP)", "+10.8%", pct(h.OptOverRR)},
			{"MPPT&Opt vs MPPT&IC (PTP)", "+37.8%", pct(h.OptOverIC)},
			{"MPPT&Opt vs best fixed budget", "≥ +43%", pct(h.OptOverBestFixed)},
			{"best fixed budget / SolarCore", "< 0.70", fmt.Sprintf("%.2f", h.BestFixedRatio)},
			{"MPPT&Opt vs Battery-U (PTP)", "≈ −1%", pct(h.OptVsBatteryU)},
		})
}

func figure1Chart(r exp.Figure1Result) string {
	var xs, ys []float64
	for _, p := range r.Points {
		xs = append(xs, p.Irradiance)
		ys = append(ys, p.Utilization*100)
	}
	return viz.LineChart{
		Title:  "Fixed-load energy utilization (matched at 1000 W/m²)",
		XLabel: "irradiance (W/m²)", YLabel: "utilization (%)",
		Series: []viz.Series{{Name: "fixed load", X: xs, Y: ys}},
		W:      480, H: 300,
	}.SVG()
}

func curveChart(f exp.CurveFamily) string {
	var series []viz.Series
	for i, label := range f.Labels {
		var xs, ys []float64
		for _, p := range f.Curves[i] {
			xs = append(xs, p.V)
			ys = append(ys, p.P)
		}
		series = append(series, viz.Series{Name: label, X: xs, Y: ys})
	}
	return viz.LineChart{
		Title: f.Title, XLabel: "module voltage (V)", YLabel: "power (W)",
		Series: series, W: 480, H: 320,
	}.SVG()
}

func trackingChart(f exp.TrackingFigure) string {
	var out strings.Builder
	for i, run := range f.Runs {
		if f.Mixes[i] != "H1" && f.Mixes[i] != "L1" {
			continue // keep the report compact: extremes only
		}
		var xs, budget, actual []float64
		for _, p := range run.Series {
			xs = append(xs, p.Minute)
			budget = append(budget, p.BudgetW)
			actual = append(actual, p.ActualW)
		}
		out.WriteString(viz.LineChart{
			Title:  fmt.Sprintf("%s — %s", f.Label, f.Mixes[i]),
			XLabel: "minute of day", YLabel: "watts",
			Series: []viz.Series{
				{Name: "maximal budget", X: xs, Y: budget},
				{Name: "actual", X: xs, Y: actual},
			},
			W: 480, H: 280,
		}.SVG())
	}
	return out.String()
}

func table7HTML(t exp.Table7Result) string {
	hm := viz.Heatmap{
		Title:    "Relative tracking error (geometric mean per day)",
		ColNames: t.Mixes,
		Format:   "%.1f",
	}
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			hm.RowNames = append(hm.RowNames, site.Code+" "+season.String())
			var row []float64
			for _, e := range t.Err[site.Code][season.String()] {
				row = append(row, e*100)
			}
			hm.Values = append(hm.Values, row)
		}
	}
	return hm.SVG()
}

func figure15Charts(r exp.Figure15Result) string {
	var out strings.Builder
	for _, site := range atmos.Sites {
		var series []viz.Series
		for _, row := range r.Rows {
			if !strings.HasSuffix(row.Label, "@"+site.Code) {
				continue
			}
			series = append(series, viz.Series{Name: row.Label, X: r.Budgets, Y: row.Normalized})
		}
		out.WriteString(viz.LineChart{
			Title:  site.Code + " — normalized effective duration vs threshold",
			XLabel: "power-transfer threshold (W)", YLabel: "normalized duration",
			Series: series, W: 480, H: 280,
		}.SVG())
	}
	return out.String()
}

func fixedSweepChart(r exp.FixedSweepResult) string {
	var out strings.Builder
	for _, site := range atmos.Sites {
		var series []viz.Series
		for _, season := range atmos.Seasons {
			series = append(series, viz.Series{
				Name: season.String(), X: r.Budgets, Y: r.Norm[site.Code][season.String()],
			})
		}
		one := 1.0
		out.WriteString(viz.LineChart{
			Title:  fmt.Sprintf("%s — %s (fixed budget / SolarCore)", site.Code, r.Metric),
			XLabel: "fixed budget (W)", YLabel: "normalized " + r.Metric,
			Series: series, Refs: []viz.RefLine{{Name: "SolarCore", Y: 1, Color: "#CC0000"}},
			YMax: &one,
			W:    480, H: 260,
		}.SVG())
	}
	return out.String()
}

func figure18Charts(r exp.Figure18Result) string {
	var out strings.Builder
	for _, site := range atmos.Sites {
		var series []viz.BarSeries
		for pi, policy := range r.Policies {
			vals := make([]float64, len(r.Mixes))
			for mi := range r.Mixes {
				vals[mi] = r.Util[site.Code][mi][pi] * 100
			}
			series = append(series, viz.BarSeries{Name: policy, Values: vals})
		}
		out.WriteString(viz.BarChart{
			Title: site.Code + " — energy utilization", YLabel: "%",
			Categories: r.Mixes, Series: series,
			Refs: []viz.RefLine{
				{Name: "battery high", Y: r.BatteryBands["High"] * 100, Color: "#CC0000"},
				{Name: "battery typical", Y: r.BatteryBands["Moderate"] * 100, Color: "#888888"},
			},
			W: 480, H: 280,
		}.SVG())
	}
	return out.String()
}

func figure19Chart(r exp.Figure19Result) string {
	var cats []string
	var vals []float64
	for _, site := range atmos.Sites {
		for si, season := range atmos.Seasons {
			cats = append(cats, season.String()+"@"+site.Code)
			vals = append(vals, r.SolarShare[site.Code][si]*100)
		}
	}
	return viz.BarChart{
		Title: "Effective operation duration", YLabel: "% of daytime on solar",
		Categories: cats,
		Series:     []viz.BarSeries{{Name: "solar", Values: vals}},
		W:          960, H: 280,
	}.SVG()
}

func figure20Chart(r exp.Figure20Result) string {
	var cats []string
	for _, b := range r.Buckets {
		cats = append(cats, b.Label)
	}
	var series []viz.BarSeries
	for pi, policy := range r.Policies {
		vals := make([]float64, len(r.Buckets))
		for bi, b := range r.Buckets {
			vals[bi] = b.Util[pi] * 100
		}
		series = append(series, viz.BarSeries{Name: policy, Values: vals})
	}
	return viz.BarChart{
		Title: "Utilization vs effective-duration bucket", YLabel: "%",
		Categories: cats, Series: series, W: 640, H: 300,
	}.SVG()
}

func figure21Chart(r exp.Figure21Result) string {
	// Grid-average per mix and series, Battery-L = 1 reference.
	var series []viz.BarSeries
	for si, name := range r.Series {
		vals := make([]float64, len(r.Mixes))
		for mi := range r.Mixes {
			var all []float64
			for _, seasons := range r.Norm {
				for _, grid := range seasons {
					all = append(all, grid[mi][si])
				}
			}
			vals[mi] = mathx.Mean(all)
		}
		series = append(series, viz.BarSeries{Name: name, Values: vals})
	}
	return viz.BarChart{
		Title: "Normalized PTP by workload (grid average, Battery-L = 1)", YLabel: "× Battery-L",
		Categories: r.Mixes, Series: series,
		Refs: []viz.RefLine{{Name: "Battery-L", Y: 1, Color: "#CC0000"}},
		W:    960, H: 320,
	}.SVG()
}

func ablationTable(a exp.AblationResult) string {
	headers := []string{"config", "utilization", "track err", "PTP (Ginstr)", "duration"}
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Label, pct(r.Utilization), pct(r.TrackErr),
			fmt.Sprintf("%.0f", r.PTP), pct(r.Duration),
		})
	}
	return fmt.Sprintf("<h3>%s</h3><p>%s</p>%s",
		html.EscapeString(a.Title), html.EscapeString(a.Knob), htmlTable(headers, rows))
}

func trackerTable(t exp.TrackerComparisonResult) string {
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{r.Algorithm, pct(r.Efficiency), pct(r.RailExcursion)})
	}
	return htmlTable([]string{"algorithm", "tracking eff", "rail excursion"}, rows)
}

func consolidationTable(c exp.ConsolidationResult) string {
	var rows [][]string
	for _, r := range c.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f W", r.BudgetW),
			fmt.Sprintf("%.0f / %d", r.ActiveOverhead, c.Nodes),
			fmt.Sprintf("%.0f / %d", r.ActiveFree, c.Nodes),
			fmt.Sprintf("%.1f", r.ThroughputOver),
			fmt.Sprintf("%.1f", r.ThroughputFree),
		})
	}
	return htmlTable([]string{"budget", "active (overhead)", "active (free)", "GIPS (overhead)", "GIPS (free)"}, rows)
}

func sustainabilityTable(s exp.SustainabilityResult) string {
	var rows [][]string
	for _, r := range s.Rows {
		rows = append(rows, []string{
			r.Site, r.Grid, pct(r.CarbonReduction),
			fmt.Sprintf("%.2f kg", r.SavedKgPerDay),
			fmt.Sprintf("$%.0f", r.SavedUSDPerYear),
		})
	}
	return htmlTable([]string{"site", "grid", "carbon reduction", "CO2 saved/day", "cost saved/yr"}, rows)
}

func mountTable(m exp.MountStudyResult) string {
	var rows [][]string
	for _, r := range m.Rows {
		rows = append(rows, []string{
			r.Site, fmt.Sprintf("%.0f Wh", r.FixedWh), fmt.Sprintf("%.0f Wh", r.TrackedWh),
			pct(r.EnergyGain), pct(r.PTPGain),
		})
	}
	return htmlTable([]string{"site", "fixed energy", "tracked energy", "energy gain", "PTP gain"}, rows)
}

func forecastTable(f exp.ForecastStudyResult) string {
	headers := append([]string{"pattern"}, f.Forecasters...)
	var rows [][]string
	for i, p := range f.Patterns {
		row := []string{p}
		for _, v := range f.RelMAE[i] {
			row = append(row, pct(v))
		}
		rows = append(rows, row)
	}
	return htmlTable(headers, rows)
}
