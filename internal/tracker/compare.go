package tracker

import (
	"math"

	"solarcore/internal/power"
	"solarcore/internal/pv"
)

// Sample is one control period of a tracker evaluation.
type Sample struct {
	Minute    float64
	Available float64 // η·Pmpp, the deliverable maximum (W)
	Delivered float64 // power actually reaching the load (W)
	VLoad     float64 // load rail voltage (V)
}

// Evaluation aggregates a tracker run over an irradiance schedule.
type Evaluation struct {
	Algorithm string
	Samples   []Sample
}

// TrackingEfficiency returns delivered energy over deliverable energy.
func (e Evaluation) TrackingEfficiency() float64 {
	var got, avail float64
	for _, s := range e.Samples {
		got += s.Delivered
		avail += s.Available
	}
	if avail == 0 {
		return 0
	}
	return got / avail
}

// RailExcursion returns the mean relative deviation of the load rail from
// vNominal — the price of tuning only the converter: a conventional
// tracker holds power but lets the rail wander.
func (e Evaluation) RailExcursion(vNominal float64) float64 {
	if len(e.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range e.Samples {
		sum += math.Abs(s.VLoad-vNominal) / vNominal
	}
	return sum / float64(len(e.Samples))
}

// Schedule is a time-varying environment: minute → env.
type Schedule func(minute float64) pv.Env

// Ramp returns a schedule sweeping irradiance linearly from g0 to g1 over
// the given duration at a fixed cell temperature.
func Ramp(g0, g1, durationMin, cellTemp float64) Schedule {
	return func(minute float64) pv.Env {
		t := minute / durationMin
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return pv.Env{Irradiance: g0 + (g1-g0)*t, CellTemp: cellTemp}
	}
}

// Evaluate runs an algorithm against a generator and a fixed load
// resistance over the schedule, stepping once per control period of
// periodMin minutes for durationMin minutes.
func Evaluate(alg Algorithm, gen pv.Generator, rLoad float64, sched Schedule, durationMin, periodMin float64) Evaluation {
	circuit := power.NewCircuit(gen)
	alg.Reset()
	ev := Evaluation{Algorithm: alg.Name()}
	for t := 0.0; t < durationMin; t += periodMin {
		env := sched(t)
		alg.Step(circuit, env, rLoad)
		op := circuit.Operate(env, rLoad)
		ev.Samples = append(ev.Samples, Sample{
			Minute:    t,
			Available: circuit.AvailableMax(env),
			Delivered: op.PLoad,
			VLoad:     op.VLoad,
		})
	}
	return ev
}
