package tracker

import (
	"math"
	"testing"

	"solarcore/internal/power"
	"solarcore/internal/pv"
)

func bpGen() pv.Generator { return pv.NewModule(pv.BP3180N()) }

// matchedLoad returns a load resistance that lets the converter reach the
// MPP somewhere inside its k range at STC.
func matchedLoad(g pv.Generator) float64 {
	mpp := g.MPP(pv.STC)
	// Pick R so the matched k = sqrt(Rmpp/(R·η)) sits near the middle of
	// the range: with Rmpp = Vmpp/Impp ≈ 7 Ω and k≈2, R ≈ 7/(4·0.96) ≈ 1.8.
	rmpp := mpp.V / mpp.I
	return rmpp / (4 * 0.96)
}

func TestAllTrackersConvergeOnStaticSky(t *testing.T) {
	gen := bpGen()
	r := matchedLoad(gen)
	sched := func(float64) pv.Env { return pv.STC }
	for _, alg := range All() {
		ev := Evaluate(alg, gen, r, sched, 120, 0.2)
		// Judge only the settled half.
		tail := Evaluation{Algorithm: alg.Name(), Samples: ev.Samples[len(ev.Samples)/2:]}
		if eff := tail.TrackingEfficiency(); eff < 0.95 {
			t.Errorf("%s: settled tracking efficiency %.3f, want ≥ 0.95", alg.Name(), eff)
		}
	}
}

func TestTrackersFollowRamp(t *testing.T) {
	gen := bpGen()
	r := matchedLoad(gen)
	sched := Ramp(900, 350, 240, 30)
	for _, alg := range All() {
		ev := Evaluate(alg, gen, r, sched, 240, 0.2)
		if eff := ev.TrackingEfficiency(); eff < 0.88 {
			t.Errorf("%s: ramp tracking efficiency %.3f, want ≥ 0.88", alg.Name(), eff)
		}
	}
}

func TestConventionalTrackersLoseTheRail(t *testing.T) {
	// The paper's Section 2.3 point: ratio-only tracking cannot also hold
	// the load rail. Across a 900→350 W/m² ramp the rail must wander far
	// from nominal at SOME point for a fixed load (power changes ~2.5×, and
	// P = V²/R forces V to move with it).
	gen := bpGen()
	r := matchedLoad(gen)
	sched := Ramp(900, 350, 240, 30)
	for _, alg := range All() {
		ev := Evaluate(alg, gen, r, sched, 240, 0.2)
		worst := 0.0
		for _, s := range ev.Samples {
			if d := math.Abs(s.VLoad-12) / 12; d > worst {
				worst = d
			}
		}
		if worst < 0.15 {
			t.Errorf("%s: worst rail deviation %.2f — a fixed load should not hold the rail through a 2.5× power swing", alg.Name(), worst)
		}
	}
}

func TestPerturbObserveBouncesOffRails(t *testing.T) {
	gen := bpGen()
	circuit := power.NewCircuit(gen)
	circuit.Conv.SetRatio(circuit.Conv.KMax)
	po := &PerturbObserve{}
	po.Reset()
	for i := 0; i < 50; i++ {
		po.Step(circuit, pv.STC, 2)
	}
	if circuit.Conv.K >= circuit.Conv.KMax {
		t.Error("P&O stayed pinned at KMax")
	}
}

func TestIncCondDeadband(t *testing.T) {
	// Once settled at the MPP, IncCond should hold still (small k motion),
	// unlike P&O which oscillates by construction.
	gen := bpGen()
	r := matchedLoad(gen)
	ic := &IncCond{}
	circuit := power.NewCircuit(gen)
	ic.Reset()
	for i := 0; i < 600; i++ {
		ic.Step(circuit, pv.STC, r)
	}
	kSettled := circuit.Conv.K
	moves := 0
	for i := 0; i < 50; i++ {
		ic.Step(circuit, pv.STC, r)
		if circuit.Conv.K != kSettled {
			moves++
			kSettled = circuit.Conv.K
		}
	}
	if moves > 25 {
		t.Errorf("IncCond still moving %d/50 steps at steady state", moves)
	}
}

func TestFractionalVocTargetsFraction(t *testing.T) {
	gen := bpGen()
	r := matchedLoad(gen)
	fv := &FractionalVoc{K: 0.76, SamplePeriod: 10}
	circuit := power.NewCircuit(gen)
	fv.Reset()
	var op power.Operating
	for i := 0; i < 800; i++ {
		fv.Step(circuit, pv.STC, r)
		op = circuit.Operate(pv.STC, r)
	}
	want := 0.76 * gen.OpenCircuitVoltage(pv.STC)
	if math.Abs(op.VPanel-want)/want > 0.03 {
		t.Errorf("FracVoc settled at %.2f V, want ≈ %.2f V", op.VPanel, want)
	}
}

func TestEvaluationEmpty(t *testing.T) {
	var ev Evaluation
	if ev.TrackingEfficiency() != 0 || ev.RailExcursion(12) != 0 {
		t.Error("empty evaluation should report zeros")
	}
}

func TestRampClamps(t *testing.T) {
	s := Ramp(100, 200, 10, 25)
	if g := s(-5).Irradiance; g != 100 {
		t.Errorf("pre-start = %v", g)
	}
	if g := s(50).Irradiance; g != 200 {
		t.Errorf("post-end = %v", g)
	}
	if g := s(5).Irradiance; g != 150 {
		t.Errorf("midpoint = %v", g)
	}
}
