package tracker

import (
	"solarcore/internal/power"
	"solarcore/internal/pv"
)

// GlobalScan is the partial-shading-aware tracker: periodically it sweeps
// the converter's whole ratio range, jumps to the best-producing ratio, and
// hill-climbs locally in between. Single-hill trackers (P&O, IncCond) lock
// onto whichever local maximum of a multi-peak P-V curve they start near;
// the scan escapes them at the cost of a brief excursion.
type GlobalScan struct {
	// RescanPeriod is the number of Step calls between full sweeps
	// (default 60).
	RescanPeriod int
	// ScanPoints is the number of ratios probed per sweep (default 24).
	ScanPoints int

	steps int
	local PerturbObserve
}

// Name identifies the algorithm.
func (*GlobalScan) Name() string { return "GlobalScan" }

// Reset clears the scan schedule and the local climber.
func (g *GlobalScan) Reset() {
	g.steps = 0
	g.local.Reset()
}

// Step either performs the periodic global sweep or one local P&O move.
func (g *GlobalScan) Step(c *power.Circuit, env pv.Env, rLoad float64) {
	period := g.RescanPeriod
	if period <= 0 {
		period = 60
	}
	points := g.ScanPoints
	if points <= 1 {
		points = 24
	}
	if g.steps%period == 0 {
		g.sweep(c, env, rLoad, points)
		g.local.Reset()
	} else {
		g.local.Step(c, env, rLoad)
	}
	g.steps++
}

// sweep probes the full ratio range and parks the converter at the best
// ratio found.
func (g *GlobalScan) sweep(c *power.Circuit, env pv.Env, rLoad float64, points int) {
	bestK, bestP := c.Conv.K, -1.0
	for i := 0; i < points; i++ {
		k := c.Conv.KMin + (c.Conv.KMax-c.Conv.KMin)*float64(i)/float64(points-1)
		c.Conv.SetRatio(k)
		if p := c.Operate(env, rLoad).PLoad; p > bestP {
			bestK, bestP = k, p
		}
	}
	c.Conv.SetRatio(bestK)
}
