// Package tracker implements the classical converter-side MPPT algorithms
// the paper positions itself against (Section 7; Esram & Chapman's survey):
// perturb-and-observe, incremental conductance, and fractional open-circuit
// voltage. Each algorithm tunes only the DC/DC transfer ratio against a
// fixed electrical load.
//
// These trackers can extract near-maximal power, but — as Section 2.3
// argues — ratio-only tuning cannot also regulate the load rail: the
// operating voltage swings with the weather, which a processor cannot
// tolerate. The comparison harness measures both tracking efficiency and
// rail excursion, quantifying why SolarCore co-tunes the load.
package tracker

import (
	"math"

	"solarcore/internal/power"
	"solarcore/internal/pv"
)

// Algorithm is a converter-side MPPT policy. Step observes the present
// operating point through the circuit's sensors and may adjust the
// converter ratio; it is invoked once per control period.
type Algorithm interface {
	Name() string
	Step(c *power.Circuit, env pv.Env, rLoad float64)
	Reset()
}

// PerturbObserve is the textbook P&O hill climber: perturb k in the current
// direction; if output power rose, keep going, otherwise reverse.
type PerturbObserve struct {
	dir       int
	lastPower float64
	started   bool
}

// Name identifies the algorithm.
func (*PerturbObserve) Name() string { return "P&O" }

// Reset clears the climb state.
func (p *PerturbObserve) Reset() { *p = PerturbObserve{} }

// Step perturbs the transfer ratio once.
func (p *PerturbObserve) Step(c *power.Circuit, env pv.Env, rLoad float64) {
	op := c.Operate(env, rLoad)
	if !p.started {
		p.started = true
		p.dir = 1
		p.lastPower = op.PLoad
		c.Conv.Step(p.dir)
		return
	}
	if op.PLoad < p.lastPower {
		p.dir = -p.dir
	}
	p.lastPower = op.PLoad
	if !c.Conv.Step(p.dir) {
		// Railed: bounce off the limit.
		p.dir = -p.dir
		c.Conv.Step(p.dir)
	}
}

// IncCond is incremental conductance: at the MPP dP/dV = 0, equivalently
// dI/dV = −I/V on the panel side. The sign of dI/dV + I/V picks the tuning
// direction without the oscillation P&O suffers at steady state.
type IncCond struct {
	lastV, lastI float64
	started      bool
	// Tol is the conductance deadband (relative to the instantaneous
	// conductance I/V) within which the tracker holds still. It must cover
	// the curvature seen across one discrete Δk step; defaults to 0.25.
	Tol float64
}

// Name identifies the algorithm.
func (*IncCond) Name() string { return "IncCond" }

// Reset clears the differentiation state.
func (ic *IncCond) Reset() { *ic = IncCond{Tol: ic.Tol} }

// Step compares incremental and instantaneous conductance and nudges k.
func (ic *IncCond) Step(c *power.Circuit, env pv.Env, rLoad float64) {
	tol := ic.Tol
	if tol <= 0 {
		tol = 0.25
	}
	op := c.Operate(env, rLoad)
	v, i := op.VPanel, op.IPanel
	if !ic.started || v <= 0 {
		ic.started = true
		ic.lastV, ic.lastI = v, i
		c.Conv.Step(1) // kick to create a dV
		return
	}
	dv, di := v-ic.lastV, i-ic.lastI
	ic.lastV, ic.lastI = v, i
	if math.Abs(dv) < 1e-6 {
		// No voltage motion. dI ≠ 0 means the irradiance changed under a
		// still converter: move with it. dI = 0 means settled: hold — this
		// is IncCond's advantage over P&O's perpetual oscillation.
		const diTol = 0.02
		switch {
		case di > diTol*i:
			c.Conv.Step(1)
		case di < -diTol*i:
			c.Conv.Step(-1)
		}
		return
	}
	g := di/dv + i/v // >0 left of MPP, <0 right of MPP
	switch {
	case g > tol*i/v:
		c.Conv.Step(1) // move panel voltage up
	case g < -tol*i/v:
		c.Conv.Step(-1)
	}
}

// FractionalVoc is the constant-voltage method: the MPP voltage of a
// silicon module stays near a fixed fraction of its open-circuit voltage
// (≈0.76 for the BP3180N), so the tracker periodically samples Voc (by
// momentarily opening the load) and servos the panel to K·Voc.
type FractionalVoc struct {
	// K is the Vmpp/Voc fraction; defaults to 0.76.
	K float64
	// SamplePeriod is how many Step calls between Voc samples; defaults
	// to 30.
	SamplePeriod int

	steps  int
	target float64
}

// Name identifies the algorithm.
func (*FractionalVoc) Name() string { return "FracVoc" }

// Reset clears the sampling state.
func (f *FractionalVoc) Reset() { f.steps, f.target = 0, 0 }

// Step refreshes the Voc sample when due and servos the panel voltage
// toward the stored target.
func (f *FractionalVoc) Step(c *power.Circuit, env pv.Env, rLoad float64) {
	k := f.K
	if k <= 0 {
		k = 0.76
	}
	period := f.SamplePeriod
	if period <= 0 {
		period = 30
	}
	if f.steps%period == 0 {
		// Momentarily open the load: Voc appears at the panel terminals.
		f.target = k * c.Gen.OpenCircuitVoltage(env)
	}
	f.steps++
	if f.target <= 0 {
		return
	}
	op := c.Operate(env, rLoad)
	switch {
	case op.VPanel < f.target*0.995:
		c.Conv.Step(1)
	case op.VPanel > f.target*1.005:
		c.Conv.Step(-1)
	}
}

// All returns one instance of every classical algorithm.
func All() []Algorithm {
	return []Algorithm{&PerturbObserve{}, &IncCond{}, &FractionalVoc{}}
}
