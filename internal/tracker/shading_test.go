package tracker

import (
	"testing"

	"solarcore/internal/power"
	"solarcore/internal/pv"
)

// shadedRig builds a partially shaded 3-module string whose P-V curve has
// two peaks, with the global one at the high-current (low-voltage) end.
func shadedRig() (*pv.ShadedString, float64) {
	s := pv.NewShadedString(pv.BP3180N(), []float64{1, 1, 0.3})
	// Load sized so mid-range converter ratios reach both peaks.
	mpp := s.MPP(pv.STC)
	return s, (mpp.V / mpp.I) / (9 * 0.96) // matched near k = 3
}

func TestShadedStringHasDecoyPeak(t *testing.T) {
	s, _ := shadedRig()
	peaks := s.LocalMPPs(pv.STC)
	if len(peaks) < 2 {
		t.Fatalf("want a multi-peak curve, got %d peaks", len(peaks))
	}
	global := s.MPP(pv.STC)
	decoy := 0.0
	for _, p := range peaks {
		if p.P < global.P*0.999 && p.P > decoy {
			decoy = p.P
		}
	}
	if decoy == 0 || decoy > 0.85*global.P {
		t.Fatalf("decoy peak %.1f W vs global %.1f W — want a meaningful trap", decoy, global.P)
	}
}

func TestPerturbObserveTrapsOnDecoy(t *testing.T) {
	// Start the converter near the wrong (low-power) peak: P&O climbs the
	// local hill and never leaves it.
	s, r := shadedRig()
	circuit := power.NewCircuit(s)
	global := s.MPP(pv.STC)

	// Park near the high-voltage decoy: a large ratio puts the panel-side
	// voltage up where the shaded module still conducts.
	circuit.Conv.SetRatio(circuit.Conv.KMax)
	po := &PerturbObserve{}
	po.Reset()
	for i := 0; i < 600; i++ {
		po.Step(circuit, pv.STC, r)
	}
	settled := circuit.Operate(pv.STC, r).PLoad
	if settled > 0.9*global.P*circuit.Conv.Efficiency {
		t.Skipf("P&O escaped the decoy on this geometry (settled %.1f W)", settled)
	}
	if settled < 0.2*global.P*circuit.Conv.Efficiency {
		t.Errorf("P&O should still hold a local peak, got %.1f W", settled)
	}
}

func TestGlobalScanEscapesDecoy(t *testing.T) {
	s, r := shadedRig()
	circuit := power.NewCircuit(s)
	global := s.MPP(pv.STC)

	circuit.Conv.SetRatio(circuit.Conv.KMax) // same trap start as P&O
	gs := &GlobalScan{RescanPeriod: 40, ScanPoints: 32}
	gs.Reset()
	for i := 0; i < 600; i++ {
		gs.Step(circuit, pv.STC, r)
	}
	settled := circuit.Operate(pv.STC, r).PLoad
	want := 0.9 * global.P * circuit.Conv.Efficiency
	if settled < want {
		t.Errorf("GlobalScan settled at %.1f W, want ≥ %.1f W (global peak)", settled, want)
	}
}

func TestGlobalScanOnUniformPanel(t *testing.T) {
	// No shading: GlobalScan must match the classic trackers.
	gen := bpGen()
	r := matchedLoad(gen)
	ev := Evaluate(&GlobalScan{RescanPeriod: 50}, gen, r, func(float64) pv.Env { return pv.STC }, 120, 0.2)
	tail := Evaluation{Samples: ev.Samples[len(ev.Samples)/2:]}
	if eff := tail.TrackingEfficiency(); eff < 0.93 {
		t.Errorf("GlobalScan settled efficiency %.3f on uniform panel", eff)
	}
}
