package exp

import (
	"fmt"
	"strings"

	"solarcore/internal/atmos"
)

// Every experiment result exposes CSV() so cmd/experiments can emit the raw
// data behind each figure for external plotting. Columns are stable and
// documented here rather than in each figure's paper caption.

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func csvRow(cells ...string) string {
	for i, c := range cells {
		cells[i] = csvEscape(c)
	}
	return strings.Join(cells, ",") + "\n"
}

// CSV emits irradiance,utilization rows.
func (r Figure1Result) CSV() string {
	var b strings.Builder
	b.WriteString("irradiance_wm2,utilization\n")
	for _, p := range r.Points {
		b.WriteString(csvRow(fmt.Sprintf("%.0f", p.Irradiance), fmt.Sprintf("%.4f", p.Utilization)))
	}
	return b.String()
}

// CSV emits pattern,mix,minute,budget_w,actual_w,on_solar rows.
func (f TrackingFigure) CSV() string {
	var b strings.Builder
	b.WriteString("pattern,mix,minute,budget_w,actual_w,on_solar\n")
	for i, run := range f.Runs {
		for _, p := range run.Series {
			b.WriteString(csvRow(f.Label, f.Mixes[i],
				fmt.Sprintf("%.1f", p.Minute),
				fmt.Sprintf("%.2f", p.BudgetW),
				fmt.Sprintf("%.2f", p.ActualW),
				fmt.Sprintf("%t", p.OnSolar)))
		}
	}
	return b.String()
}

// CSV emits site,month,mix,error rows.
func (t Table7Result) CSV() string {
	var b strings.Builder
	b.WriteString("site,month,mix,tracking_error\n")
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			errs := t.Err[site.Code][season.String()]
			for i, e := range errs {
				b.WriteString(csvRow(site.Code, season.String(), t.Mixes[i], fmt.Sprintf("%.4f", e)))
			}
		}
	}
	return b.String()
}

// CSV emits pattern,budget_w,duration_min,normalized,class rows.
func (r Figure15Result) CSV() string {
	var b strings.Builder
	b.WriteString("pattern,budget_w,duration_min,normalized,class\n")
	for _, row := range r.Rows {
		for i, budget := range r.Budgets {
			b.WriteString(csvRow(row.Label,
				fmt.Sprintf("%g", budget),
				fmt.Sprintf("%.1f", row.Durations[i]),
				fmt.Sprintf("%.4f", row.Normalized[i]),
				string(row.Class)))
		}
	}
	return b.String()
}

// CSV emits site,month,budget_w,normalized rows.
func (r FixedSweepResult) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "site,month,budget_w,normalized_%s\n", r.Metric)
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			vals := r.Norm[site.Code][season.String()]
			for i, budget := range r.Budgets {
				b.WriteString(csvRow(site.Code, season.String(),
					fmt.Sprintf("%g", budget), fmt.Sprintf("%.4f", vals[i])))
			}
		}
	}
	return b.String()
}

// CSV emits site,mix,policy,utilization rows.
func (r Figure18Result) CSV() string {
	var b strings.Builder
	b.WriteString("site,mix,policy,utilization\n")
	for _, site := range atmos.Sites {
		for mi, mixName := range r.Mixes {
			for pi, policy := range r.Policies {
				b.WriteString(csvRow(site.Code, mixName, policy,
					fmt.Sprintf("%.4f", r.Util[site.Code][mi][pi])))
			}
		}
	}
	return b.String()
}

// CSV emits site,month,solar_share rows.
func (r Figure19Result) CSV() string {
	var b strings.Builder
	b.WriteString("site,month,solar_share\n")
	for _, site := range atmos.Sites {
		for si, season := range atmos.Seasons {
			b.WriteString(csvRow(site.Code, season.String(),
				fmt.Sprintf("%.4f", r.SolarShare[site.Code][si])))
		}
	}
	return b.String()
}

// CSV emits bucket,policy,utilization,samples rows.
func (r Figure20Result) CSV() string {
	var b strings.Builder
	b.WriteString("duration_bucket,policy,utilization,samples\n")
	for _, bucket := range r.Buckets {
		for pi, policy := range r.Policies {
			b.WriteString(csvRow(bucket.Label, policy,
				fmt.Sprintf("%.4f", bucket.Util[pi]),
				fmt.Sprintf("%d", bucket.Samples)))
		}
	}
	return b.String()
}

// CSV emits site,month,mix,series,normalized_ptp rows.
func (r Figure21Result) CSV() string {
	var b strings.Builder
	b.WriteString("site,month,mix,series,normalized_ptp\n")
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			grid := r.Norm[site.Code][season.String()]
			for mi, mixName := range r.Mixes {
				for si, series := range r.Series {
					b.WriteString(csvRow(site.Code, season.String(), mixName, series,
						fmt.Sprintf("%.4f", grid[mi][si])))
				}
			}
		}
	}
	return b.String()
}

// CSV emits config,utilization,track_err,ptp,duration rows.
func (a AblationResult) CSV() string {
	var b strings.Builder
	b.WriteString("config,utilization,track_err,ptp_ginstr,duration\n")
	for _, r := range a.Rows {
		b.WriteString(csvRow(r.Label,
			fmt.Sprintf("%.4f", r.Utilization),
			fmt.Sprintf("%.4f", r.TrackErr),
			fmt.Sprintf("%.1f", r.PTP),
			fmt.Sprintf("%.4f", r.Duration)))
	}
	return b.String()
}

// CSV emits algorithm,tracking_eff,rail_excursion rows.
func (t TrackerComparisonResult) CSV() string {
	var b strings.Builder
	b.WriteString("algorithm,tracking_eff,rail_excursion\n")
	for _, r := range t.Rows {
		b.WriteString(csvRow(r.Algorithm,
			fmt.Sprintf("%.4f", r.Efficiency),
			fmt.Sprintf("%.4f", r.RailExcursion)))
	}
	return b.String()
}

// CSV emits pattern,forecaster,relative_mae rows.
func (r ForecastStudyResult) CSV() string {
	var b strings.Builder
	b.WriteString("pattern,forecaster,relative_mae\n")
	for i, p := range r.Patterns {
		for fi, f := range r.Forecasters {
			b.WriteString(csvRow(p, f, fmt.Sprintf("%.4f", r.RelMAE[i][fi])))
		}
	}
	return b.String()
}

// CSV emits budget_w,active_overhead,active_free,gips_overhead,gips_free rows.
func (c ConsolidationResult) CSV() string {
	var b strings.Builder
	b.WriteString("budget_w,active_overhead,active_free,gips_overhead,gips_free\n")
	for _, r := range c.Rows {
		b.WriteString(csvRow(
			fmt.Sprintf("%g", r.BudgetW),
			fmt.Sprintf("%.0f", r.ActiveOverhead),
			fmt.Sprintf("%.0f", r.ActiveFree),
			fmt.Sprintf("%.3f", r.ThroughputOver),
			fmt.Sprintf("%.3f", r.ThroughputFree)))
	}
	return b.String()
}

// CSV emits site,carbon_reduction,co2_saved_kg_day,cost_saved_usd_year rows.
func (s SustainabilityResult) CSV() string {
	var b strings.Builder
	b.WriteString("site,carbon_reduction,co2_saved_kg_day,cost_saved_usd_year\n")
	for _, r := range s.Rows {
		b.WriteString(csvRow(r.Site,
			fmt.Sprintf("%.4f", r.CarbonReduction),
			fmt.Sprintf("%.3f", r.SavedKgPerDay),
			fmt.Sprintf("%.2f", r.SavedUSDPerYear)))
	}
	return b.String()
}

// CSV emits site,fixed_wh,tracked_wh,energy_gain,ptp_gain rows.
func (m MountStudyResult) CSV() string {
	var b strings.Builder
	b.WriteString("site,fixed_wh,tracked_wh,energy_gain,ptp_gain\n")
	for _, r := range m.Rows {
		b.WriteString(csvRow(r.Site,
			fmt.Sprintf("%.1f", r.FixedWh),
			fmt.Sprintf("%.1f", r.TrackedWh),
			fmt.Sprintf("%.4f", r.EnergyGain),
			fmt.Sprintf("%.4f", r.PTPGain)))
	}
	return b.String()
}

// CSV emits day,utilization,opt_over_rr,opt_over_ic rows.
func (r RobustnessResult) CSV() string {
	var b strings.Builder
	b.WriteString("day,utilization,opt_over_rr,opt_over_ic\n")
	for i, d := range r.Days {
		b.WriteString(csvRow(fmt.Sprintf("%d", d),
			fmt.Sprintf("%.4f", r.Utilization[i]),
			fmt.Sprintf("%.4f", r.OptOverRR[i]),
			fmt.Sprintf("%.4f", r.OptOverIC[i])))
	}
	return b.String()
}
