package exp

import (
	"fmt"

	"solarcore/internal/atmos"
	"solarcore/internal/mathx"
	"solarcore/internal/power"
)

// Figure18Result holds green-energy utilization for every site, workload
// and MPPT policy, against the Table 3 battery de-rating bands (Figure 18).
type Figure18Result struct {
	Mixes    []string
	Policies []string
	// Util[site][mix index][policy index], averaged over seasons.
	Util map[string][][]float64
	// BatteryBands maps grade name → overall de-rating factor.
	BatteryBands map[string]float64
}

// Figure18 computes the utilization comparison.
func Figure18(l *Lab) Figure18Result {
	mixes := l.Opts.Mixes()
	res := Figure18Result{
		Policies:     MPPTPolicies,
		Util:         map[string][][]float64{},
		BatteryBands: map[string]float64{},
	}
	for _, m := range mixes {
		res.Mixes = append(res.Mixes, m.Name)
	}
	for _, g := range power.BatteryGrades {
		res.BatteryBands[g.Name] = g.Derating()
	}
	for _, site := range atmos.Sites {
		perMix := make([][]float64, len(mixes))
		for mi, mix := range mixes {
			perMix[mi] = make([]float64, len(MPPTPolicies))
			for pi, policy := range MPPTPolicies {
				var us []float64
				for _, season := range atmos.Seasons {
					us = append(us, l.MPPT(site, season, mix, policy).Utilization())
				}
				perMix[mi][pi] = mathx.Mean(us)
			}
		}
		res.Util[site.Code] = perMix
	}
	return res
}

// SiteAverage returns the mean utilization for a site under a policy.
func (r Figure18Result) SiteAverage(site, policy string) float64 {
	pi := indexOf(r.Policies, policy)
	var vals []float64
	for _, perPolicy := range r.Util[site] {
		vals = append(vals, perPolicy[pi])
	}
	return mathx.Mean(vals)
}

// OverallAverage returns the mean utilization across all sites and mixes
// for a policy — the paper's headline "82 % on average".
func (r Figure18Result) OverallAverage(policy string) float64 {
	var vals []float64
	for _, site := range atmos.Sites {
		vals = append(vals, r.SiteAverage(site.Code, policy))
	}
	return mathx.Mean(vals)
}

// Render draws one row per site/mix with the three policies as columns.
func (r Figure18Result) Render() string {
	headers := append([]string{"site", "mix"}, r.Policies...)
	var rows [][]string
	for _, site := range atmos.Sites {
		for mi, mixName := range r.Mixes {
			row := []string{site.Code, mixName}
			for pi := range r.Policies {
				row = append(row, pct(r.Util[site.Code][mi][pi]))
			}
			rows = append(rows, row)
		}
	}
	title := fmt.Sprintf(
		"Figure 18: average energy utilization (battery bands: high %.0f%%, typical %.0f%%, low %.0f%%)",
		r.BatteryBands["High"]*100, r.BatteryBands["Moderate"]*100, r.BatteryBands["Low"]*100)
	return renderTable(title, headers, rows)
}

// Figure19Result is the effective operation duration (% of daytime powered
// by solar vs utility) for every site and season (Figure 19).
type Figure19Result struct {
	// SolarShare[site][season index] is the fraction of daytime on solar.
	SolarShare map[string][]float64
}

// Figure19 computes effective operation duration under MPPT&Opt, averaged
// over the workload grid.
func Figure19(l *Lab) Figure19Result {
	mixes := l.Opts.Mixes()
	res := Figure19Result{SolarShare: map[string][]float64{}}
	for _, site := range atmos.Sites {
		shares := make([]float64, len(atmos.Seasons))
		for si, season := range atmos.Seasons {
			var vals []float64
			for _, mix := range mixes {
				vals = append(vals, l.MPPT(site, season, mix, "MPPT&Opt").EffectiveDuration())
			}
			shares[si] = mathx.Mean(vals)
		}
		res.SolarShare[site.Code] = shares
	}
	return res
}

// Render draws the stacked solar/utility share per site-season.
func (r Figure19Result) Render() string {
	headers := []string{"site", "month", "solar", "utility"}
	var rows [][]string
	for _, site := range atmos.Sites {
		for si, season := range atmos.Seasons {
			s := r.SolarShare[site.Code][si]
			rows = append(rows, []string{site.Code, season.String(), pct(s), pct(1 - s)})
		}
	}
	return renderTable("Figure 19: effective operation duration (share of daytime)", headers, rows)
}

// Figure20Bucket is one effective-duration bucket of Figure 20.
type Figure20Bucket struct {
	Label   string
	Lo, Hi  float64
	Util    []float64 // mean utilization per policy, MPPTPolicies order
	Samples int
}

// Figure20Result groups every (site, season, mix) day by its effective
// operation duration and reports average utilization per bucket and policy
// (Figure 20).
type Figure20Result struct {
	Policies []string
	Buckets  []Figure20Bucket
}

// Figure20 computes the duration-bucketed utilization.
func Figure20(l *Lab) Figure20Result {
	buckets := []Figure20Bucket{
		{Label: "> 90", Lo: 0.9, Hi: 1.01},
		{Label: "80~90", Lo: 0.8, Hi: 0.9},
		{Label: "70~80", Lo: 0.7, Hi: 0.8},
		{Label: "60~70", Lo: 0.6, Hi: 0.7},
		{Label: "50~60", Lo: 0.5, Hi: 0.6},
	}
	sums := make([][]float64, len(buckets))
	counts := make([][]int, len(buckets))
	for i := range buckets {
		sums[i] = make([]float64, len(MPPTPolicies))
		counts[i] = make([]int, len(MPPTPolicies))
	}
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			for _, mix := range l.Opts.Mixes() {
				for pi, policy := range MPPTPolicies {
					run := l.MPPT(site, season, mix, policy)
					d := run.EffectiveDuration()
					for bi, b := range buckets {
						if d >= b.Lo && d < b.Hi {
							sums[bi][pi] += run.Utilization()
							counts[bi][pi]++
							break
						}
					}
				}
			}
		}
	}
	res := Figure20Result{Policies: MPPTPolicies}
	for bi, b := range buckets {
		b.Util = make([]float64, len(MPPTPolicies))
		for pi := range MPPTPolicies {
			if counts[bi][pi] > 0 {
				b.Util[pi] = sums[bi][pi] / float64(counts[bi][pi])
			}
			b.Samples += counts[bi][pi]
		}
		res.Buckets = append(res.Buckets, b)
	}
	return res
}

// Render draws one row per duration bucket.
func (r Figure20Result) Render() string {
	headers := append([]string{"duration (% daytime)", "days"}, r.Policies...)
	var rows [][]string
	for _, b := range r.Buckets {
		row := []string{b.Label, fmt.Sprintf("%d", b.Samples)}
		for _, u := range b.Util {
			if u == 0 {
				row = append(row, "-")
			} else {
				row = append(row, pct(u))
			}
		}
		rows = append(rows, row)
	}
	return renderTable("Figure 20: average energy utilization vs effective operation duration", headers, rows)
}

func indexOf(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}
