package exp

import (
	"encoding/csv"
	"strings"
	"testing"
)

// parseCSV asserts the emitted text is valid CSV with a header and a
// uniform column count, and returns the records.
func parseCSV(t *testing.T, name, data string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("%s: invalid CSV: %v", name, err)
	}
	if len(recs) < 2 {
		t.Fatalf("%s: no data rows", name)
	}
	return recs
}

func TestAllCSVEmitters(t *testing.T) {
	l := quickLab(t)
	mixCount := len(l.Opts.Mixes())

	cases := []struct {
		name string
		data string
		rows int // expected data rows (0 = just non-empty)
	}{
		{"figure1", Figure1().CSV(), 4},
		{"figure13", Figure13(l).CSV(), 0},
		{"table7", Table7(l).CSV(), 16 * mixCount},
		{"figure15", Figure15(l).CSV(), 16 * len(FixedBudgets)},
		{"figure16", Figure16(l).CSV(), 16 * len(FixedBudgets)},
		{"figure17", Figure17(l).CSV(), 16 * len(FixedBudgets)},
		{"figure18", Figure18(l).CSV(), 4 * mixCount * 3},
		{"figure19", Figure19(l).CSV(), 16},
		{"figure20", Figure20(l).CSV(), 15},
		{"figure21", Figure21(l).CSV(), 16 * mixCount * 4},
		{"ablation", AblationMargin(l).CSV(), 5},
		{"trackers", TrackerComparison(l).CSV(), 4},
		{"forecast", ForecastStudy(l).CSV(), 48},
		{"consolidation", ConsolidationStudy().CSV(), 5},
		{"sustainability", Sustainability(l).CSV(), 4},
		{"mount", MountStudy(l).CSV(), 4},
		{"robustness", RobustnessResult{Days: []int{0}, Utilization: []float64{0.86}, OptOverRR: []float64{0.1}, OptOverIC: []float64{0.2}}.CSV(), 1},
	}
	for _, c := range cases {
		recs := parseCSV(t, c.name, c.data)
		if c.rows > 0 && len(recs)-1 != c.rows {
			t.Errorf("%s: %d data rows, want %d", c.name, len(recs)-1, c.rows)
		}
		width := len(recs[0])
		for i, rec := range recs {
			if len(rec) != width {
				t.Errorf("%s: row %d has %d columns, want %d", c.name, i, len(rec), width)
				break
			}
		}
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("plain escaped: %q", got)
	}
	if got := csvEscape(`a,"b"`); got != `"a,""b"""` {
		t.Errorf("quoted wrong: %q", got)
	}
	row := csvRow("a", `b,c`)
	if row != "a,\"b,c\"\n" {
		t.Errorf("row = %q", row)
	}
}
