package exp

import (
	"fmt"
	"strings"

	"solarcore/internal/atmos"
	"solarcore/internal/fault"
	"solarcore/internal/mathx"
)

// FaultSweepIntensities is the severity grid of FaultSweep.
var FaultSweepIntensities = []float64{0, 0.25, 0.5, 0.75, 1}

// FaultSweep's fixed mid-day injection window, minutes since midnight.
const (
	faultSweepT0 = 600.0 // unit: min
	faultSweepT1 = 720.0 // unit: min
)

// FaultSweepResult is the resilience table: green-energy utilization per
// policy as one fault kind's intensity rises over a fixed two-hour
// mid-day window (AZ in July, averaged over the option grid's workload
// mixes), plus the watchdog trips the MPPT runs accumulated.
type FaultSweepResult struct {
	Kind        string
	Intensities []float64
	Policies    []string // MPPTPolicies then the Fixed-Power baseline
	// Util[intensity index][policy index] is the mean utilization.
	Util [][]float64
	// Trips[intensity index] totals watchdog trips across the MPPT runs.
	Trips []int
}

// FaultSweep measures graceful degradation: the same day grid re-run at
// rising intensities of one injector kind (a fault.Kinds keyword). An
// unknown kind returns the ParseSpec error listing the valid kinds.
func FaultSweep(opts Options, kind string) (FaultSweepResult, error) {
	res := FaultSweepResult{
		Kind:        kind,
		Intensities: FaultSweepIntensities,
		Policies:    append(append([]string{}, MPPTPolicies...), "Fixed-75W"),
	}
	for _, inten := range res.Intensities {
		s, err := fault.ParseSpec(fmt.Sprintf("%s:t0=%g,t1=%g,i=%g",
			kind, faultSweepT0, faultSweepT1, inten))
		if err != nil {
			return res, fmt.Errorf("exp: fault sweep: %w", err)
		}
		o := opts
		o.Faults = s
		l := NewLab(o)
		var row []float64
		trips := 0
		for _, policy := range MPPTPolicies {
			var us []float64
			for _, mix := range l.Opts.Mixes() {
				r := l.MPPT(atmos.AZ, atmos.Jul, mix, policy)
				us = append(us, r.Utilization())
				trips += r.Faults.WatchdogTrips
			}
			row = append(row, mathx.Mean(us))
		}
		var us []float64
		for _, mix := range l.Opts.Mixes() {
			us = append(us, l.Fixed(atmos.AZ, atmos.Jul, mix, 75).Utilization())
		}
		row = append(row, mathx.Mean(us))
		res.Util = append(res.Util, row)
		res.Trips = append(res.Trips, trips)
	}
	return res, nil
}

// Retention returns the worst-case over clean utilization ratio for a
// policy: row at the highest intensity over the intensity-zero row.
func (r FaultSweepResult) Retention(policy string) float64 {
	pi := indexOf(r.Policies, policy)
	if pi < 0 || len(r.Util) == 0 || r.Util[0][pi] <= 0 {
		return 0
	}
	return r.Util[len(r.Util)-1][pi] / r.Util[0][pi]
}

// Render draws one row per intensity.
func (r FaultSweepResult) Render() string {
	headers := append([]string{"intensity"}, r.Policies...)
	headers = append(headers, "watchdog trips")
	var rows [][]string
	for ii, inten := range r.Intensities {
		row := []string{f2(inten)}
		for _, u := range r.Util[ii] {
			row = append(row, pct(u))
		}
		row = append(row, fmt.Sprintf("%d", r.Trips[ii]))
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Fault sweep: utilization vs %q intensity (AZ July, window %g-%g min)",
		r.Kind, faultSweepT0, faultSweepT1)
	return renderTable(title, headers, rows)
}

// CSV emits kind,intensity,policy,utilization,watchdog_trips rows.
func (r FaultSweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("kind,intensity,policy,utilization,watchdog_trips\n")
	for ii, inten := range r.Intensities {
		for pi, policy := range r.Policies {
			fmt.Fprintf(&b, "%s,%.2f,%s,%.4f,%d\n",
				r.Kind, inten, policy, r.Util[ii][pi], r.Trips[ii])
		}
	}
	return b.String()
}
