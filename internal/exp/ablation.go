package exp

import (
	"fmt"

	"solarcore/internal/atmos"
	"solarcore/internal/mathx"
	"solarcore/internal/mcore"
	"solarcore/internal/pv"
	"solarcore/internal/sched"
	"solarcore/internal/sim"
	"solarcore/internal/tracker"
	"solarcore/internal/workload"
)

// AblationRow is one configuration point of an ablation sweep.
type AblationRow struct {
	Label       string
	Utilization float64
	TrackErr    float64
	PTP         float64
	Duration    float64
}

// AblationResult is one sweep with an explanation of the knob.
type AblationResult struct {
	Title string
	Knob  string
	Rows  []AblationRow
}

// Render draws the sweep.
func (a AblationResult) Render() string {
	rows := make([][]string, len(a.Rows))
	for i, r := range a.Rows {
		rows[i] = []string{r.Label, pct(r.Utilization), pct(r.TrackErr), f1(r.PTP), pct(r.Duration)}
	}
	return renderTable(
		fmt.Sprintf("%s (knob: %s)", a.Title, a.Knob),
		[]string{"config", "utilization", "track err", "PTP (Ginstr)", "duration"}, rows)
}

// ablationDays builds the standard two-day ablation workload: one regular
// and one irregular Phoenix day.
func ablationDays(l *Lab) []*sim.SolarDay {
	return []*sim.SolarDay{l.Day(atmos.AZ, atmos.Jan), l.Day(atmos.AZ, atmos.Jul)}
}

func ablationRun(l *Lab, label string, cfg sim.Config) AblationRow {
	mix, err := workload.MixByName("HM2")
	if err != nil {
		panic(err)
	}
	cfg.Mix = mix
	if cfg.StepMin == 0 {
		cfg.StepMin = l.Opts.stepMin()
	}
	var utils, errs, ptps, durs []float64
	for _, day := range ablationDays(l) {
		cfg.Day = day
		res, err := sim.RunMPPT(cfg, sched.OptTPR{})
		if err != nil {
			panic(err)
		}
		utils = append(utils, res.Utilization())
		errs = append(errs, res.TrackErrGeoMean())
		ptps = append(ptps, res.PTP())
		durs = append(durs, res.EffectiveDuration())
	}
	return AblationRow{
		Label:       label,
		Utilization: mathx.Mean(utils),
		TrackErr:    mathx.Mean(errs),
		PTP:         mathx.Sum(ptps),
		Duration:    mathx.Mean(durs),
	}
}

// AblationMargin sweeps the tracker's protective power margin: more margin
// buys robustness against load ripples at the cost of utilization —
// the trade-off Section 6.1 describes.
func AblationMargin(l *Lab) AblationResult {
	out := AblationResult{
		Title: "Ablation: protective power margin",
		Knob:  "DVFS steps shed after the inflection point",
	}
	for _, m := range []int{-1, 1, 2, 3, 4} {
		label := fmt.Sprintf("%d steps", m)
		if m < 0 {
			label = "no margin"
		}
		out.Rows = append(out.Rows, ablationRun(l, label, sim.Config{MarginSteps: m}))
	}
	return out
}

// AblationTrackingPeriod sweeps how often MPP tracking triggers (the paper
// uses 10-minute periods): rarer tracking lets the budget drift away from
// the load between sessions.
func AblationTrackingPeriod(l *Lab) AblationResult {
	out := AblationResult{
		Title: "Ablation: tracking period",
		Knob:  "minutes between MPP tracking sessions",
	}
	for _, p := range []float64{5, 10, 20, 40} {
		out.Rows = append(out.Rows, ablationRun(l, fmt.Sprintf("%g min", p), sim.Config{TrackPeriodMin: p}))
	}
	return out
}

// AblationDVFSGranularity sweeps the number of per-core operating points.
// Section 6.3: "by increasing the granularity of DVFS level, one can
// increase the control accuracy of MPPT and the power margin can be
// further decreased".
func AblationDVFSGranularity(l *Lab) AblationResult {
	out := AblationResult{
		Title: "Ablation: DVFS granularity",
		Knob:  "operating points per core (Table 4 uses 6)",
	}
	for _, n := range []int{3, 6, 12, 24} {
		chip := mcore.DefaultConfig()
		chip.Points = mcore.LinearPoints(n)
		out.Rows = append(out.Rows, ablationRun(l, fmt.Sprintf("%d levels", n), sim.Config{Chip: chip}))
	}
	return out
}

// AblationDeltaK sweeps the converter perturbation step: coarse steps
// converge in fewer actions but overshoot the MPP; fine steps cost more
// tracking actions within the <5 ms session budget.
func AblationDeltaK(l *Lab) AblationResult {
	out := AblationResult{
		Title: "Ablation: converter perturbation step Δk",
		Knob:  "transfer-ratio step per tracking action",
	}
	for _, dk := range []float64{0.005, 0.02, 0.05, 0.10} {
		out.Rows = append(out.Rows, ablationRun(l, fmt.Sprintf("Δk=%g", dk), sim.Config{DeltaK: dk}))
	}
	return out
}

// AblationEventTracking contrasts purely periodic tracking with
// supply-change-triggered re-tracking on the irregular Jul@AZ pattern,
// where mid-period cloud edges are the dominant budget events.
func AblationEventTracking(l *Lab) AblationResult {
	out := AblationResult{
		Title: "Ablation: periodic vs event-triggered tracking",
		Knob:  "re-track when the available power drifts >15 % mid-period",
	}
	out.Rows = append(out.Rows,
		ablationRun(l, "periodic (10 min)", sim.Config{}),
		ablationRun(l, "event-triggered", sim.Config{EventTracking: true}),
	)
	return out
}

// AblationSensorNoise sweeps I/V sensing error — failure injection for the
// controller's feedback path.
func AblationSensorNoise(l *Lab) AblationResult {
	out := AblationResult{
		Title: "Ablation: I/V sensor error",
		Knob:  "multiplicative measurement noise amplitude",
	}
	for _, e := range []float64{0, 0.005, 0.01, 0.02, 0.04} {
		out.Rows = append(out.Rows, ablationRun(l, fmt.Sprintf("±%.1f%%", e*100), sim.Config{SensorError: e}))
	}
	return out
}

// TrackerComparisonRow is one algorithm of the conventional-MPPT study.
type TrackerComparisonRow struct {
	Algorithm     string
	Efficiency    float64 // delivered / deliverable energy
	RailExcursion float64 // mean relative rail deviation from 12 V
}

// TrackerComparisonResult contrasts converter-only trackers with
// SolarCore's coordinated tracking (Section 2.3's argument).
type TrackerComparisonResult struct {
	Rows []TrackerComparisonRow
}

// TrackerComparison evaluates the classical algorithms on a fixed load
// over an irradiance ramp and appends SolarCore's coordinated result on
// the same panel and weather.
func TrackerComparison(l *Lab) TrackerComparisonResult {
	gen := pv.NewModule(pv.BP3180N())
	mpp := gen.MPP(pv.STC)
	rLoad := (mpp.V / mpp.I) / (4 * 0.96)
	sched9 := tracker.Ramp(950, 350, 240, 30)

	var out TrackerComparisonResult
	for _, alg := range tracker.All() {
		ev := tracker.Evaluate(alg, gen, rLoad, sched9, 240, 0.2)
		out.Rows = append(out.Rows, TrackerComparisonRow{
			Algorithm:     ev.Algorithm,
			Efficiency:    ev.TrackingEfficiency(),
			RailExcursion: ev.RailExcursion(12),
		})
	}

	// SolarCore on the same ramp: coordinated k + load tuning holds the
	// rail while tracking. Reuse the day engine on a synthetic ramp trace.
	ramp := &atmos.Trace{Site: atmos.AZ, Season: atmos.Jan, StepMin: 1}
	for m := 0.0; m <= 240; m++ {
		env := sched9(m)
		ramp.Samples = append(ramp.Samples, atmos.Sample{
			Minute: atmos.DayStartMinute + m, Irradiance: env.Irradiance, AmbientC: 20,
		})
	}
	day, err := sim.NewSolarDay(ramp, pv.BP3180N(), 1, 1)
	if err != nil {
		panic(err)
	}
	mix, _ := workload.MixByName("HM2")
	res, err := sim.RunMPPT(sim.Config{Day: day, Mix: mix, StepMin: 1}, sched.OptTPR{})
	if err != nil {
		panic(err)
	}
	out.Rows = append(out.Rows, TrackerComparisonRow{
		Algorithm:  "SolarCore",
		Efficiency: res.SolarWh / (res.MPPEnergyWh * 0.96),
		// The engine holds the rail at nominal by construction of the
		// matching loop; its excursion is the controller's tolerance band.
		RailExcursion: 0.02,
	})
	return out
}

// Render draws the tracker comparison.
func (t TrackerComparisonResult) Render() string {
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{r.Algorithm, pct(r.Efficiency), pct(r.RailExcursion)}
	}
	return renderTable(
		"Conventional MPPT vs SolarCore on a 950→350 W/m² ramp (fixed load for the classical trackers)",
		[]string{"algorithm", "tracking eff", "rail excursion"}, rows)
}
