package exp

import (
	"context"
	"errors"
	"strings"
	"testing"

	"solarcore/internal/fault"
)

func TestFaultSweepSensorDropout(t *testing.T) {
	if testing.Short() {
		t.Skip("full intensity grid")
	}
	res, err := FaultSweep(Options{Quick: true, StepMin: 4}, fault.KindSensorDrop)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Util) != len(FaultSweepIntensities) {
		t.Fatalf("rows = %d, want %d", len(res.Util), len(FaultSweepIntensities))
	}
	if res.Trips[0] != 0 {
		t.Errorf("intensity-zero row tripped the watchdog %d times", res.Trips[0])
	}
	last := len(res.Util) - 1
	if res.Trips[last] == 0 {
		t.Error("total dropout never tripped the watchdog")
	}
	// Graceful, not catastrophic: the faulted MPPT&Opt day keeps a
	// substantial share of its clean utilization.
	if ret := res.Retention("MPPT&Opt"); ret <= 0.5 || ret > 1.001 {
		t.Errorf("MPPT&Opt retention %.3f, want in (0.5, 1]", ret)
	}
	out := res.Render()
	for _, want := range []string{"intensity", "MPPT&Opt", "Fixed-75W", "watchdog trips"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table misses %q:\n%s", want, out)
		}
	}
}

func TestFaultSweepUnknownKind(t *testing.T) {
	_, err := FaultSweep(Options{Quick: true}, "warp-core")
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	if !strings.Contains(err.Error(), fault.KindCloud) {
		t.Errorf("error %q does not list the valid kinds", err)
	}
}

// panicInjector simulates a third-party injector whose hook blows up
// mid-simulation — the Lab's workers must contain it.
type panicInjector struct{}

func (panicInjector) Kind() string         { return "panic" }
func (panicInjector) Window() fault.Window { return fault.Window{T0: 0, T1: 1e9} }
func (panicInjector) Intensity() float64   { return 1 }
func (panicInjector) IrradianceScale(minute float64) float64 {
	panic("injector exploded")
}

func TestPrefetchContainsPanickingCell(t *testing.T) {
	lab := NewLab(Options{Quick: true, StepMin: 4,
		Faults: fault.NewSchedule(0, panicInjector{})})
	err := lab.PrefetchContext(context.Background())
	if err == nil {
		t.Fatal("panicking cells surfaced no error")
	}
	// The error names the cell, not just the panic payload.
	if !strings.Contains(err.Error(), "injector exploded") {
		t.Errorf("error %q misses the panic payload", err)
	}
	if !strings.Contains(err.Error(), "MPPT&Opt") {
		t.Errorf("error %q does not identify a cell", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Error("panic containment mislabeled as cancellation")
	}
}
