package exp

import (
	"fmt"
	"strings"
)

// renderTable formats a simple aligned ASCII table with a title.
func renderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// sparkline draws a compact unicode plot of a series scaled to max.
func sparkline(values []float64, max float64) string {
	if max <= 0 {
		max = 1
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range values {
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
