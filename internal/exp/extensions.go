package exp

import (
	"fmt"

	"solarcore/internal/atmos"
	"solarcore/internal/dc"
	"solarcore/internal/sched"
	"solarcore/internal/sim"
	"solarcore/internal/sustain"
	"solarcore/internal/thermal"
	"solarcore/internal/workload"
)

// AblationThermal sweeps the die-temperature trip point on the hottest
// evaluated weather (Jul@AZ): solar-driven allocation meets the thermal
// wall of the related work's thermal-constrained DVFS.
func AblationThermal(l *Lab) AblationResult {
	out := AblationResult{
		Title: "Ablation: thermal trip point (Jul@AZ)",
		Knob:  "die TMax for the throttle governor (∞ = unconstrained)",
	}
	mix, err := workload.MixByName("H1")
	if err != nil {
		panic(err)
	}
	run := func(label string, cfg sim.Config) {
		cfg.Mix = mix
		cfg.Day = l.Day(atmos.AZ, atmos.Jul)
		cfg.StepMin = l.Opts.stepMin()
		res, err := sim.RunMPPT(cfg, sched.OptTPR{})
		if err != nil {
			panic(err)
		}
		out.Rows = append(out.Rows, AblationRow{
			Label:       fmt.Sprintf("%s (%d throttles, peak %.0f°C)", label, res.ThrottleEvents, res.PeakTempC),
			Utilization: res.Utilization(),
			TrackErr:    res.TrackErrGeoMean(),
			PTP:         res.PTP(),
			Duration:    res.EffectiveDuration(),
		})
	}
	run("unconstrained", sim.Config{})
	for _, tmax := range []float64{95, 85, 75} {
		tc := thermal.DefaultConfig()
		tc.TMaxC = tmax
		run(fmt.Sprintf("TMax %.0f°C", tmax), sim.Config{Thermal: &tc})
	}
	return out
}

// ConsolidationRow is one budget point of the cluster study.
type ConsolidationRow struct {
	BudgetW        float64
	ActiveOverhead float64 // active nodes with 25 W/node PSU overhead
	ActiveFree     float64 // active nodes with no overhead
	ThroughputOver float64 // GIPS with overhead
	ThroughputFree float64
}

// ConsolidationResult is the datacenter-scale study: how the global TPR
// allocator concentrates work onto fewer servers as the solar budget
// shrinks, once node overhead makes idle servers expensive.
type ConsolidationResult struct {
	Nodes int
	Rows  []ConsolidationRow
}

// ConsolidationStudy sweeps the cluster budget.
func ConsolidationStudy() ConsolidationResult {
	var mixes []workload.Mix
	for _, name := range []string{"HM2", "ML2", "M2", "L2"} {
		m, err := workload.MixByName(name)
		if err != nil {
			panic(err)
		}
		mixes = append(mixes, m)
	}
	build := func(overhead float64) *dc.Cluster {
		c, err := dc.New(dc.Config{Nodes: 6, Mixes: mixes, NodeOverheadW: overhead})
		if err != nil {
			panic(err)
		}
		return c
	}
	res := ConsolidationResult{Nodes: 6}
	for _, budget := range []float64{60, 120, 240, 480, 900} {
		over := build(25)
		free := build(0)
		over.FillBudget(0, budget)
		free.FillBudget(0, budget)
		res.Rows = append(res.Rows, ConsolidationRow{
			BudgetW:        budget,
			ActiveOverhead: float64(over.ActiveNodes()),
			ActiveFree:     float64(free.ActiveNodes()),
			ThroughputOver: over.Throughput(0),
			ThroughputFree: free.Throughput(0),
		})
	}
	return res
}

// Render draws the consolidation table.
func (c ConsolidationResult) Render() string {
	var rows [][]string
	for _, r := range c.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f W", r.BudgetW),
			fmt.Sprintf("%.0f / %d", r.ActiveOverhead, c.Nodes),
			fmt.Sprintf("%.0f / %d", r.ActiveFree, c.Nodes),
			f1(r.ThroughputOver), f1(r.ThroughputFree),
		})
	}
	return renderTable(
		"Cluster consolidation: active nodes vs shared solar budget (6 nodes)",
		[]string{"budget", "active (25 W overhead)", "active (no overhead)", "GIPS (overhead)", "GIPS (free)"}, rows)
}

// SustainabilityRow is one site of the carbon/cost study.
type SustainabilityRow struct {
	Site            string
	Grid            string
	CarbonReduction float64 // fraction of chip footprint eliminated
	SavedKgPerDay   float64
	SavedUSDPerYear float64 // per chip, extrapolated
}

// SustainabilityResult quantifies the paper's motivating claim — carbon
// footprint reduction — per site under MPPT&Opt, averaged over seasons.
type SustainabilityResult struct {
	Rows []SustainabilityRow
}

// Sustainability computes the study from the shared grid.
func Sustainability(l *Lab) SustainabilityResult {
	var res SustainabilityResult
	mixes := l.Opts.Mixes()
	for _, site := range atmos.Sites {
		gp := sustain.ProfileFor(site.Code)
		var impacts []sustain.Impact
		for _, season := range atmos.Seasons {
			for _, mix := range mixes {
				impacts = append(impacts, sustain.Assess(l.MPPT(site, season, mix, "MPPT&Opt"), gp))
			}
		}
		total := sustain.Sum(impacts...)
		days := float64(len(impacts))
		res.Rows = append(res.Rows, SustainabilityRow{
			Site:            site.Code,
			Grid:            gp.Name,
			CarbonReduction: total.CarbonReduction(),
			SavedKgPerDay:   total.CarbonSavedKg / days,
			SavedUSDPerYear: total.CostSaved / days * 365,
		})
	}
	return res
}

// Render draws the per-site sustainability table.
func (s SustainabilityResult) Render() string {
	var rows [][]string
	for _, r := range s.Rows {
		rows = append(rows, []string{
			r.Site, r.Grid, pct(r.CarbonReduction),
			fmt.Sprintf("%.2f kg", r.SavedKgPerDay),
			fmt.Sprintf("$%.0f", r.SavedUSDPerYear),
		})
	}
	return renderTable(
		"Sustainability: chip carbon footprint eliminated by SolarCore (MPPT&Opt)",
		[]string{"site", "grid", "carbon reduction", "CO2 saved/day", "cost saved/yr"}, rows)
}

// MountRow is one site of the mounting study.
type MountRow struct {
	Site        string
	FixedWh     float64 // daily panel MPP energy, fixed tilt
	TrackedWh   float64 // same day on a single-axis tracker
	EnergyGain  float64 // TrackedWh/FixedWh − 1
	PTPGain     float64 // SolarCore PTP gain from the tracker
	UtilTracked float64
}

// MountStudyResult compares fixed-tilt and single-axis-tracker mounts: the
// tracker harvests more panel energy, but a chip-limited system cannot
// always convert the surplus into instructions — sizing insight the paper's
// single-panel setup implies but never shows.
type MountStudyResult struct {
	Season string
	Rows   []MountRow
}

// MountStudy runs the comparison on each site's April day.
func MountStudy(l *Lab) MountStudyResult {
	mix, err := workload.MixByName("M2")
	if err != nil {
		panic(err)
	}
	res := MountStudyResult{Season: atmos.Apr.String()}
	for _, site := range atmos.Sites {
		tr := atmos.Generate(site, atmos.Apr, atmos.GenConfig{Day: l.Opts.Day})
		fixedDay := l.Day(site, atmos.Apr)
		trackedDay, err := sim.NewSolarDay(tr.WithMount(atmos.SingleAxisTracker), fixedDay.Params, 1, 1)
		if err != nil {
			panic(err)
		}
		runPTP := func(day *sim.SolarDay) (float64, float64) {
			r, err := sim.RunMPPT(sim.Config{Day: day, Mix: mix, StepMin: l.Opts.stepMin()}, sched.OptTPR{})
			if err != nil {
				panic(err)
			}
			return r.PTP(), r.Utilization()
		}
		fixedPTP, _ := runPTP(fixedDay)
		trackedPTP, trackedUtil := runPTP(trackedDay)
		res.Rows = append(res.Rows, MountRow{
			Site:        site.Code,
			FixedWh:     fixedDay.MPPEnergyWh(),
			TrackedWh:   trackedDay.MPPEnergyWh(),
			EnergyGain:  trackedDay.MPPEnergyWh()/fixedDay.MPPEnergyWh() - 1,
			PTPGain:     trackedPTP/fixedPTP - 1,
			UtilTracked: trackedUtil,
		})
	}
	return res
}

// Render draws the mount comparison.
func (m MountStudyResult) Render() string {
	var rows [][]string
	for _, r := range m.Rows {
		rows = append(rows, []string{
			r.Site, fmt.Sprintf("%.0f Wh", r.FixedWh), fmt.Sprintf("%.0f Wh", r.TrackedWh),
			pct(r.EnergyGain), pct(r.PTPGain), pct(r.UtilTracked),
		})
	}
	return renderTable(
		fmt.Sprintf("Mount study (%s): fixed tilt vs single-axis tracker", m.Season),
		[]string{"site", "fixed energy", "tracked energy", "energy gain", "PTP gain", "util (tracked)"}, rows)
}
