package exp

import (
	"strings"
	"testing"
)

func TestAblationMargin(t *testing.T) {
	l := quickLab(t)
	a := AblationMargin(l)
	if len(a.Rows) != 5 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// More margin must not raise utilization.
	if a.Rows[0].Utilization < a.Rows[len(a.Rows)-1].Utilization {
		t.Errorf("no-margin utilization %.3f below 4-step %.3f",
			a.Rows[0].Utilization, a.Rows[len(a.Rows)-1].Utilization)
	}
	if !strings.Contains(a.Render(), "margin") {
		t.Error("render missing knob")
	}
}

func TestAblationTrackingPeriod(t *testing.T) {
	l := quickLab(t)
	a := AblationTrackingPeriod(l)
	if len(a.Rows) != 4 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// With continuous mid-period load adaptation the tracking period is a
	// second-order knob: the sweep must stay productive and within a small
	// utilization band (this insensitivity is itself the finding — the
	// periodic session mostly re-seats the converter ratio).
	lo, hi := 1.0, 0.0
	for _, r := range a.Rows {
		if r.Utilization < lo {
			lo = r.Utilization
		}
		if r.Utilization > hi {
			hi = r.Utilization
		}
		if r.PTP <= 0 {
			t.Errorf("%s: empty run", r.Label)
		}
	}
	if hi-lo > 0.05 {
		t.Errorf("tracking-period sweep spread %.3f, want < 0.05", hi-lo)
	}
}

func TestAblationDVFSGranularity(t *testing.T) {
	l := quickLab(t)
	a := AblationDVFSGranularity(l)
	if len(a.Rows) != 4 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// Section 6.3: finer DVFS should not worsen tracking error; compare the
	// 3-level and 24-level extremes.
	if a.Rows[3].TrackErr > a.Rows[0].TrackErr+0.01 {
		t.Errorf("24-level error %.3f above 3-level %.3f", a.Rows[3].TrackErr, a.Rows[0].TrackErr)
	}
	for _, r := range a.Rows {
		if r.Utilization <= 0 || r.PTP <= 0 {
			t.Errorf("%s produced empty run", r.Label)
		}
	}
}

func TestAblationDeltaK(t *testing.T) {
	l := quickLab(t)
	a := AblationDeltaK(l)
	for _, r := range a.Rows {
		if r.Utilization < 0.5 {
			t.Errorf("%s: utilization %.3f — tracking broke", r.Label, r.Utilization)
		}
	}
}

func TestAblationSensorNoise(t *testing.T) {
	l := quickLab(t)
	a := AblationSensorNoise(l)
	if len(a.Rows) != 5 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	clean, worst := a.Rows[0], a.Rows[len(a.Rows)-1]
	if worst.Utilization > clean.Utilization+0.02 {
		t.Errorf("±4%% sensors (%.3f) should not beat ideal sensors (%.3f)",
			worst.Utilization, clean.Utilization)
	}
	// Even ±4 % sensors keep the system productive.
	if worst.Utilization < 0.5 {
		t.Errorf("tracking collapsed under sensor noise: %.3f", worst.Utilization)
	}
}

func TestTrackerComparison(t *testing.T) {
	l := quickLab(t)
	tc := TrackerComparison(l)
	if len(tc.Rows) != 4 { // P&O, IncCond, FracVoc, SolarCore
		t.Fatalf("rows = %d", len(tc.Rows))
	}
	var solarcoreRow *TrackerComparisonRow
	for i := range tc.Rows {
		r := &tc.Rows[i]
		if r.Efficiency <= 0 || r.Efficiency > 1.001 {
			t.Errorf("%s: efficiency %.3f", r.Algorithm, r.Efficiency)
		}
		if r.Algorithm == "SolarCore" {
			solarcoreRow = r
		}
	}
	if solarcoreRow == nil {
		t.Fatal("SolarCore row missing")
	}
	// The point of the comparison: every conventional tracker lets the rail
	// wander far more than SolarCore's regulated band.
	for _, r := range tc.Rows {
		if r.Algorithm == "SolarCore" {
			continue
		}
		if r.RailExcursion < 2*solarcoreRow.RailExcursion {
			t.Errorf("%s rail excursion %.3f not well above SolarCore's %.3f",
				r.Algorithm, r.RailExcursion, solarcoreRow.RailExcursion)
		}
	}
	if !strings.Contains(tc.Render(), "SolarCore") {
		t.Error("render missing SolarCore row")
	}
}

func TestAblationEventTracking(t *testing.T) {
	l := quickLab(t)
	a := AblationEventTracking(l)
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	periodic, event := a.Rows[0], a.Rows[1]
	// Event-triggered tracking reacts to cloud edges; it must not be
	// meaningfully worse than periodic tracking.
	if event.Utilization < periodic.Utilization-0.02 {
		t.Errorf("event-triggered %.3f clearly below periodic %.3f",
			event.Utilization, periodic.Utilization)
	}
	if event.PTP <= 0 {
		t.Error("event-triggered run empty")
	}
}

func TestForecastStudy(t *testing.T) {
	l := quickLab(t)
	fs := ForecastStudy(l)
	if len(fs.Patterns) != 16 || len(fs.Forecasters) != 3 {
		t.Fatalf("grid %dx%d", len(fs.Patterns), len(fs.Forecasters))
	}
	for i, row := range fs.RelMAE {
		for fi, v := range row {
			if v < 0 || v > 1 {
				t.Errorf("%s/%s: relative MAE %v implausible", fs.Patterns[i], fs.Forecasters[fi], v)
			}
		}
	}
	if fs.Best() == "" {
		t.Error("no best forecaster")
	}
	if !strings.Contains(fs.Render(), "Forecast study") {
		t.Error("render missing title")
	}
}

func TestRobustnessAcrossWeatherDays(t *testing.T) {
	r := Robustness(Options{Quick: true}, 3)
	if len(r.Days) != 3 {
		t.Fatalf("days = %d", len(r.Days))
	}
	if !r.Stable() {
		t.Errorf("policy ordering unstable across weather days: %+v", r)
	}
	for i, u := range r.Utilization {
		if u < 0.75 || u > 0.95 {
			t.Errorf("day %d utilization %.3f outside the expected regime", i, u)
		}
	}
	if !strings.Contains(r.Render(), "mean") {
		t.Error("render missing summary row")
	}
	if (RobustnessResult{}).Stable() {
		t.Error("empty result should not be stable")
	}
}

func TestAblationThermal(t *testing.T) {
	l := quickLab(t)
	a := AblationThermal(l)
	if len(a.Rows) != 4 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// The strictest trip point must cost PTP relative to unconstrained.
	if a.Rows[3].PTP >= a.Rows[0].PTP {
		t.Errorf("75°C cap PTP %v not below unconstrained %v", a.Rows[3].PTP, a.Rows[0].PTP)
	}
	if !strings.Contains(a.Rows[3].Label, "throttles") {
		t.Errorf("label missing throttle count: %q", a.Rows[3].Label)
	}
}

func TestConsolidationStudy(t *testing.T) {
	c := ConsolidationStudy()
	if len(c.Rows) != 5 {
		t.Fatalf("rows = %d", len(c.Rows))
	}
	for _, r := range c.Rows {
		if r.ActiveOverhead > r.ActiveFree {
			t.Errorf("budget %.0f: overhead cluster uses MORE nodes (%v vs %v)",
				r.BudgetW, r.ActiveOverhead, r.ActiveFree)
		}
		if r.ThroughputOver > r.ThroughputFree+1e-9 {
			t.Errorf("budget %.0f: overhead cluster outperforms free one", r.BudgetW)
		}
	}
	// Active nodes must grow with budget (both variants).
	first, last := c.Rows[0], c.Rows[len(c.Rows)-1]
	if last.ActiveOverhead < first.ActiveOverhead || last.ActiveFree < first.ActiveFree {
		t.Error("active nodes should grow with budget")
	}
	if !strings.Contains(c.Render(), "consolidation") {
		t.Error("render missing title")
	}
}

func TestSustainability(t *testing.T) {
	l := quickLab(t)
	s := Sustainability(l)
	if len(s.Rows) != 4 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	for _, r := range s.Rows {
		if r.CarbonReduction < 0.4 || r.CarbonReduction > 1 {
			t.Errorf("%s: carbon reduction %.2f implausible", r.Site, r.CarbonReduction)
		}
		if r.SavedKgPerDay <= 0 || r.SavedUSDPerYear <= 0 {
			t.Errorf("%s: no savings", r.Site)
		}
	}
	// The best solar resource eliminates the most footprint.
	if s.Rows[0].CarbonReduction <= s.Rows[3].CarbonReduction {
		t.Errorf("AZ (%.2f) should beat TN (%.2f)", s.Rows[0].CarbonReduction, s.Rows[3].CarbonReduction)
	}
	if !strings.Contains(s.Render(), "Sustainability") {
		t.Error("render missing title")
	}
}

func TestMountStudy(t *testing.T) {
	l := quickLab(t)
	m := MountStudy(l)
	if len(m.Rows) != 4 {
		t.Fatalf("rows = %d", len(m.Rows))
	}
	for _, r := range m.Rows {
		if r.EnergyGain < 0.05 || r.EnergyGain > 0.45 {
			t.Errorf("%s: tracker energy gain %.3f implausible", r.Site, r.EnergyGain)
		}
		if r.PTPGain < -0.02 {
			t.Errorf("%s: tracker lost performance (%.3f)", r.Site, r.PTPGain)
		}
		// A chip-limited system cannot convert every extra panel watt.
		if r.PTPGain > r.EnergyGain+0.05 {
			t.Errorf("%s: PTP gain %.3f exceeds energy gain %.3f", r.Site, r.PTPGain, r.EnergyGain)
		}
	}
	if !strings.Contains(m.Render(), "Mount study") {
		t.Error("render missing title")
	}
}
