package exp

import (
	"fmt"

	"solarcore/internal/atmos"
	"solarcore/internal/sim"
	"solarcore/internal/workload"
)

// TrackingFigure is the data of Figures 13 and 14: per-workload traces of
// the maximal power budget and the power actually drawn under MPPT&Opt.
type TrackingFigure struct {
	Title string
	Label string // weather pattern, e.g. "Jan@AZ"
	Mixes []string
	Runs  []*sim.DayResult
}

// trackingMixes are the three workloads the paper plots: high-EPI
// homogeneous, high-EPI heterogeneous, low-EPI homogeneous.
var trackingMixes = []string{"H1", "HM2", "L1"}

func trackingFigure(l *Lab, title string, site atmos.Site, season atmos.Season) TrackingFigure {
	fig := TrackingFigure{Title: title, Label: season.String() + "@" + site.Code, Mixes: trackingMixes}
	for _, name := range trackingMixes {
		mix, err := workload.MixByName(name)
		if err != nil {
			panic(err)
		}
		fig.Runs = append(fig.Runs, l.MPPTSeries(site, season, mix, "MPPT&Opt"))
	}
	return fig
}

// Figure13 traces MPP tracking accuracy under the regular mid-winter
// Phoenix weather pattern (Figure 13).
func Figure13(l *Lab) TrackingFigure {
	return trackingFigure(l, "Figure 13: MPP tracking accuracy (regular weather)", atmos.AZ, atmos.Jan)
}

// Figure14 traces MPP tracking accuracy under the irregular monsoon-season
// Phoenix weather pattern (Figure 14).
func Figure14(l *Lab) TrackingFigure {
	return trackingFigure(l, "Figure 14: MPP tracking accuracy (irregular weather)", atmos.AZ, atmos.Jul)
}

// Render draws budget and actual power as stacked sparklines per workload
// and summarizes the per-day tracking statistics.
func (f TrackingFigure) Render() string {
	out := fmt.Sprintf("%s — %s\n", f.Title, f.Label)
	rows := make([][]string, 0, len(f.Runs))
	for i, run := range f.Runs {
		var budget, actual []float64
		maxB := 0.0
		stride := max(1, len(run.Series)/72)
		for j := 0; j < len(run.Series); j += stride {
			p := run.Series[j]
			budget = append(budget, p.BudgetW)
			actual = append(actual, p.ActualW)
			if p.BudgetW > maxB {
				maxB = p.BudgetW
			}
		}
		out += fmt.Sprintf("  %-4s budget |%s|\n", f.Mixes[i], sparkline(budget, maxB))
		out += fmt.Sprintf("       actual |%s|\n", sparkline(actual, maxB))
		rows = append(rows, []string{
			f.Mixes[i], pct(run.Utilization()), pct(run.EffectiveDuration()), pct(run.TrackErrGeoMean()),
		})
	}
	out += renderTable("  summary", []string{"mix", "utilization", "eff. duration", "tracking err"}, rows)
	return out
}

// Table7Result holds the geometric-mean relative tracking error for every
// site, season and workload mix (Table 7).
type Table7Result struct {
	Mixes []string
	// Err[site][season][mix index]
	Err map[string]map[string][]float64
}

// Table7 computes the full tracking-error grid under MPPT&Opt.
func Table7(l *Lab) Table7Result {
	mixes := l.Opts.Mixes()
	res := Table7Result{Err: map[string]map[string][]float64{}}
	for _, m := range mixes {
		res.Mixes = append(res.Mixes, m.Name)
	}
	for _, site := range atmos.Sites {
		res.Err[site.Code] = map[string][]float64{}
		for _, season := range atmos.Seasons {
			errs := make([]float64, len(mixes))
			for i, mix := range mixes {
				errs[i] = l.MPPT(site, season, mix, "MPPT&Opt").TrackErrGeoMean()
			}
			res.Err[site.Code][season.String()] = errs
		}
	}
	return res
}

// Render draws Table 7 in the paper's layout: one row per site/season, one
// column per workload mix.
func (t Table7Result) Render() string {
	headers := append([]string{"site", "month"}, t.Mixes...)
	var rows [][]string
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			errs := t.Err[site.Code][season.String()]
			row := []string{site.Code, season.String()}
			for _, e := range errs {
				row = append(row, pct(e))
			}
			rows = append(rows, row)
		}
	}
	return renderTable("Table 7: average relative tracking error (geometric mean per day)", headers, rows)
}
