package exp

import (
	"solarcore/internal/atmos"
	"solarcore/internal/forecast"
	"solarcore/internal/mathx"
)

// ForecastStudyResult scores short-horizon available-power forecasters per
// weather pattern: relative MAE (normalized by the day's mean available
// power) at the 10-minute tracking horizon.
type ForecastStudyResult struct {
	Forecasters []string
	// RelMAE[pattern][forecaster index]
	Patterns []string
	RelMAE   [][]float64
}

// ForecastStudy evaluates every forecaster on every site/season.
func ForecastStudy(l *Lab) ForecastStudyResult {
	var res ForecastStudyResult
	for _, f := range forecast.All() {
		res.Forecasters = append(res.Forecasters, f.Name())
	}
	const horizon = 10
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			day := l.Day(site, season)
			var minutes, watts []float64
			for m := day.StartMinute(); m <= day.EndMinute(); m++ {
				minutes = append(minutes, m)
				watts = append(watts, day.MPPAt(m))
			}
			mean := mathx.Mean(watts)
			row := make([]float64, 0, len(res.Forecasters))
			for _, f := range forecast.All() {
				sk := forecast.Evaluate(f, minutes, watts, horizon)
				if mean > 0 {
					row = append(row, sk.MAE/mean)
				} else {
					row = append(row, 0)
				}
			}
			res.Patterns = append(res.Patterns, season.String()+"@"+site.Code)
			res.RelMAE = append(res.RelMAE, row)
		}
	}
	return res
}

// Best returns the forecaster with the lowest grid-average relative MAE.
func (r ForecastStudyResult) Best() string {
	best, bestMAE := "", 0.0
	for fi, name := range r.Forecasters {
		var vals []float64
		for _, row := range r.RelMAE {
			vals = append(vals, row[fi])
		}
		if m := mathx.Mean(vals); best == "" || m < bestMAE {
			best, bestMAE = name, m
		}
	}
	return best
}

// Render draws one row per weather pattern.
func (r ForecastStudyResult) Render() string {
	headers := append([]string{"pattern"}, r.Forecasters...)
	var rows [][]string
	for i, pattern := range r.Patterns {
		row := []string{pattern}
		for _, v := range r.RelMAE[i] {
			row = append(row, pct(v))
		}
		rows = append(rows, row)
	}
	return renderTable(
		"Forecast study: relative MAE of 10-minute-ahead available-power prediction (best overall: "+r.Best()+")",
		headers, rows)
}
