package exp

import (
	"fmt"

	"solarcore/internal/atmos"
	"solarcore/internal/mathx"
	"solarcore/internal/workload"
)

// DeclineClass labels how fast effective operation duration falls as the
// power-transfer threshold rises (the three panels of Figure 15).
type DeclineClass string

// Figure 15's three duration-decline classes.
const (
	DeclineSlow   DeclineClass = "slow"
	DeclineLinear DeclineClass = "linear"
	DeclineRapid  DeclineClass = "rapid"
)

// Figure15Row is one weather pattern's duration-vs-threshold curve.
type Figure15Row struct {
	Label     string // "Apr@AZ"
	Durations []float64
	// Normalized is each duration divided by the duration at the lowest
	// threshold, the y-axis of Figure 15.
	Normalized []float64
	Class      DeclineClass
}

// Figure15Result is the full sweep.
type Figure15Result struct {
	Budgets []float64
	Rows    []Figure15Row
}

// Figure15 sweeps the fixed power-transfer threshold over every site and
// season and classifies each weather pattern's duration decline.
func Figure15(l *Lab) Figure15Result {
	mix, err := workload.MixByName("M1")
	if err != nil {
		panic(err)
	}
	res := Figure15Result{Budgets: FixedBudgets}
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			row := Figure15Row{Label: season.String() + "@" + site.Code}
			for _, b := range FixedBudgets {
				row.Durations = append(row.Durations, l.Fixed(site, season, mix, b).SolarMin)
			}
			base := row.Durations[0]
			for _, d := range row.Durations {
				if base > 0 {
					row.Normalized = append(row.Normalized, d/base)
				} else {
					row.Normalized = append(row.Normalized, 0)
				}
			}
			row.Class = classifyDecline(row.Normalized)
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// classifyDecline buckets a normalized duration curve: slow decline keeps
// meaningful duration even at the highest threshold; rapid decline has
// already lost half its duration by the middle threshold.
func classifyDecline(normalized []float64) DeclineClass {
	last := normalized[len(normalized)-1]
	mid := normalized[len(normalized)/2]
	switch {
	case last >= 0.30:
		return DeclineSlow
	case mid <= 0.50:
		return DeclineRapid
	default:
		return DeclineLinear
	}
}

// Render draws one row per weather pattern.
func (r Figure15Result) Render() string {
	headers := []string{"pattern"}
	for _, b := range r.Budgets {
		headers = append(headers, fmt.Sprintf("%gW", b))
	}
	headers = append(headers, "class")
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{row.Label}
		for _, n := range row.Normalized {
			cells = append(cells, f2(n))
		}
		cells = append(cells, string(row.Class))
		rows = append(rows, cells)
	}
	return renderTable("Figure 15: normalized effective operation duration vs power-transfer threshold", headers, rows)
}

// FixedSweepResult holds Figures 16 and 17: per site and season, the
// solar energy (or PTP) of each fixed budget normalized to SolarCore
// (MPPT&Opt) on the same day, averaged across the workload grid.
type FixedSweepResult struct {
	Title   string
	Metric  string // "energy" or "PTP"
	Budgets []float64
	// Norm[site][season][budget index]
	Norm map[string]map[string][]float64
}

func fixedSweep(l *Lab, metric string) FixedSweepResult {
	res := FixedSweepResult{
		Metric:  metric,
		Budgets: FixedBudgets,
		Norm:    map[string]map[string][]float64{},
	}
	mixes := l.Opts.Mixes()
	for _, site := range atmos.Sites {
		res.Norm[site.Code] = map[string][]float64{}
		for _, season := range atmos.Seasons {
			norm := make([]float64, len(FixedBudgets))
			for bi, b := range FixedBudgets {
				var ratios []float64
				for _, mix := range mixes {
					opt := l.MPPT(site, season, mix, "MPPT&Opt")
					fx := l.Fixed(site, season, mix, b)
					var num, den float64
					if metric == "PTP" {
						num, den = fx.PTP(), opt.PTP()
					} else {
						num, den = fx.SolarWh, opt.SolarWh
					}
					if den > 0 {
						ratios = append(ratios, num/den)
					}
				}
				norm[bi] = mathx.Mean(ratios)
			}
			res.Norm[site.Code][season.String()] = norm
		}
	}
	return res
}

// Figure16 reports solar energy drawn under fixed budgets, normalized to
// SolarCore (Figure 16).
func Figure16(l *Lab) FixedSweepResult {
	r := fixedSweep(l, "energy")
	r.Title = "Figure 16: normalized solar energy under fixed power budgets"
	return r
}

// Figure17 reports the performance-time product under fixed budgets,
// normalized to SolarCore (Figure 17).
func Figure17(l *Lab) FixedSweepResult {
	r := fixedSweep(l, "PTP")
	r.Title = "Figure 17: normalized PTP under fixed power budgets"
	return r
}

// BestRatio returns the best normalized value across every site, season
// and budget — the quantity behind the paper's "even the optimal fixed
// budget stays below 70 % of SolarCore" claim.
func (r FixedSweepResult) BestRatio() float64 {
	best := 0.0
	for _, seasons := range r.Norm {
		for _, vals := range seasons {
			for _, v := range vals {
				if v > best {
					best = v
				}
			}
		}
	}
	return best
}

// Render draws one row per site/season.
func (r FixedSweepResult) Render() string {
	headers := []string{"site", "month"}
	for _, b := range r.Budgets {
		headers = append(headers, fmt.Sprintf("%gW", b))
	}
	var rows [][]string
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			row := []string{site.Code, season.String()}
			for _, v := range r.Norm[site.Code][season.String()] {
				row = append(row, f2(v))
			}
			rows = append(rows, row)
		}
	}
	return renderTable(fmt.Sprintf("%s (best overall: %.2f)", r.Title, r.BestRatio()), headers, rows)
}
