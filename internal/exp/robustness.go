package exp

import (
	"fmt"

	"solarcore/internal/mathx"
)

// RobustnessResult re-derives the headline metrics across several
// independently generated weather days, showing that the paper-level
// conclusions are properties of the system and not of one random sky.
type RobustnessResult struct {
	Days        []int
	Utilization []float64 // MPPT&Opt grid-average utilization per day
	OptOverRR   []float64 // PTP gain per day
	OptOverIC   []float64
}

// Robustness runs the headline aggregates for `days` consecutive day
// indices using the given base options (a fresh lab per day).
func Robustness(opts Options, days int) RobustnessResult {
	if days < 1 {
		days = 1
	}
	var res RobustnessResult
	for d := 0; d < days; d++ {
		dayOpts := opts
		dayOpts.Day = d
		l := NewLab(dayOpts)
		l.Prefetch()
		f18 := Figure18(l)
		f21 := Figure21(l)
		res.Days = append(res.Days, d)
		res.Utilization = append(res.Utilization, f18.OverallAverage("MPPT&Opt"))
		res.OptOverRR = append(res.OptOverRR, f21.Average("MPPT&Opt")/f21.Average("MPPT&RR")-1)
		res.OptOverIC = append(res.OptOverIC, f21.Average("MPPT&Opt")/f21.Average("MPPT&IC")-1)
	}
	return res
}

// Render draws per-day values with a mean ± spread summary line.
func (r RobustnessResult) Render() string {
	var rows [][]string
	for i, d := range r.Days {
		rows = append(rows, []string{
			fmt.Sprintf("day %d", d),
			pct(r.Utilization[i]), pct(r.OptOverRR[i]), pct(r.OptOverIC[i]),
		})
	}
	rows = append(rows, []string{
		"mean (min..max)",
		spread(r.Utilization), spread(r.OptOverRR), spread(r.OptOverIC),
	})
	return renderTable("Robustness: headline metrics across independent weather days",
		[]string{"weather seed", "utilization", "Opt vs RR", "Opt vs IC"}, rows)
}

func spread(xs []float64) string {
	return fmt.Sprintf("%s (%s..%s)", pct(mathx.Mean(xs)), pct(mathx.Min(xs)), pct(mathx.Max(xs)))
}

// Stable reports whether the policy ordering held on every evaluated day.
func (r RobustnessResult) Stable() bool {
	for i := range r.Days {
		if r.OptOverRR[i] <= 0 || r.OptOverIC[i] <= 0 {
			return false
		}
	}
	return len(r.Days) > 0
}
