package exp

import (
	"fmt"

	"solarcore/internal/atmos"
	"solarcore/internal/mathx"
	"solarcore/internal/power"
)

// Figure21Result is the performance comparison of Figure 21: for every
// site, season and workload, the performance-time product of each MPPT
// policy and of the Battery-U bracket, normalized to Battery-L.
type Figure21Result struct {
	Mixes  []string
	Series []string // MPPTPolicies + "Battery-U"
	// Norm[site][season][mix index][series index]
	Norm map[string]map[string][][]float64
}

// Figure21 computes the normalized-PTP grid.
func Figure21(l *Lab) Figure21Result {
	mixes := l.Opts.Mixes()
	res := Figure21Result{
		Series: append(append([]string{}, MPPTPolicies...), "Battery-U"),
		Norm:   map[string]map[string][][]float64{},
	}
	for _, m := range mixes {
		res.Mixes = append(res.Mixes, m.Name)
	}
	for _, site := range atmos.Sites {
		res.Norm[site.Code] = map[string][][]float64{}
		for _, season := range atmos.Seasons {
			grid := make([][]float64, len(mixes))
			for mi, mix := range mixes {
				base := l.Battery(site, season, mix, power.BatteryLowerEff).PTP()
				vals := make([]float64, 0, len(res.Series))
				for _, policy := range MPPTPolicies {
					vals = append(vals, ratio(l.MPPT(site, season, mix, policy).PTP(), base))
				}
				vals = append(vals, ratio(l.Battery(site, season, mix, power.BatteryUpperEff).PTP(), base))
				grid[mi] = vals
			}
			res.Norm[site.Code][season.String()] = grid
		}
	}
	return res
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// Average returns the mean normalized PTP of one series over the whole
// grid — the numbers behind "the average normalized performance of
// MPPT&IC, MPPT&RR and MPPT&Opt is 0.82, 1.02 and 1.13".
func (r Figure21Result) Average(series string) float64 {
	si := indexOf(r.Series, series)
	if si < 0 {
		return 0
	}
	var vals []float64
	for _, seasons := range r.Norm {
		for _, grid := range seasons {
			for _, mixVals := range grid {
				vals = append(vals, mixVals[si])
			}
		}
	}
	return mathx.Mean(vals)
}

// Render draws one row per site/season/mix.
func (r Figure21Result) Render() string {
	headers := append([]string{"site", "month", "mix"}, r.Series...)
	var rows [][]string
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			grid := r.Norm[site.Code][season.String()]
			for mi, mixName := range r.Mixes {
				row := []string{site.Code, season.String(), mixName}
				for _, v := range grid[mi] {
					row = append(row, f2(v))
				}
				rows = append(rows, row)
			}
		}
	}
	title := fmt.Sprintf("Figure 21: normalized PTP vs Battery-L (averages: IC %.2f, RR %.2f, Opt %.2f, Battery-U %.2f)",
		r.Average("MPPT&IC"), r.Average("MPPT&RR"), r.Average("MPPT&Opt"), r.Average("Battery-U"))
	return renderTable(title, headers, rows)
}

// HeadlinesResult collects the abstract's headline claims next to the
// values this reproduction measures.
type HeadlinesResult struct {
	AvgUtilization   float64 // paper: 0.82
	OptOverRR        float64 // paper: +10.8 %
	OptOverIC        float64 // paper: +37.8 %
	OptOverBestFixed float64 // paper: ≥ +43 %
	OptVsBatteryU    float64 // paper: ≥ −1 %
	BestFixedRatio   float64 // paper: ≤ 0.70 of SolarCore
}

// Headlines computes the paper's headline numbers from the shared grid.
func Headlines(l *Lab) HeadlinesResult {
	f18 := Figure18(l)
	f21 := Figure21(l)
	f17 := Figure17(l)

	opt, rr, ic := f21.Average("MPPT&Opt"), f21.Average("MPPT&RR"), f21.Average("MPPT&IC")
	bu := f21.Average("Battery-U")
	best := f17.BestRatio()
	return HeadlinesResult{
		AvgUtilization:   f18.OverallAverage("MPPT&Opt"),
		OptOverRR:        opt/rr - 1,
		OptOverIC:        opt/ic - 1,
		OptOverBestFixed: 1/best - 1,
		OptVsBatteryU:    opt/bu - 1,
		BestFixedRatio:   best,
	}
}

// Render compares measured headlines with the paper's claims.
func (h HeadlinesResult) Render() string {
	rows := [][]string{
		{"average green-energy utilization", "82%", pct(h.AvgUtilization)},
		{"MPPT&Opt vs MPPT&RR (PTP)", "+10.8%", pct(h.OptOverRR)},
		{"MPPT&Opt vs MPPT&IC (PTP)", "+37.8%", pct(h.OptOverIC)},
		{"MPPT&Opt vs best fixed budget", "≥ +43%", pct(h.OptOverBestFixed)},
		{"best fixed budget / SolarCore", "< 0.70", f2(h.BestFixedRatio)},
		{"MPPT&Opt vs Battery-U (PTP)", "≥ -1%", pct(h.OptVsBatteryU)},
	}
	return renderTable("Headline comparison (paper vs this reproduction)",
		[]string{"claim", "paper", "measured"}, rows)
}
