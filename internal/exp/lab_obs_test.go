package exp

import (
	"context"
	"errors"
	"testing"

	"solarcore/internal/atmos"
)

// TestLabMetrics checks the lab accounts cache traffic: a cold cell is a
// miss with a wall-time sample, a warm cell is a hit.
func TestLabMetrics(t *testing.T) {
	lab := NewLab(Options{Quick: true})
	mix := lab.Opts.Mixes()[0]

	lab.MPPT(atmos.AZ, atmos.Jul, mix, "MPPT&Opt")
	lab.MPPT(atmos.AZ, atmos.Jul, mix, "MPPT&Opt")
	lab.Fixed(atmos.AZ, atmos.Jul, mix, 75)

	snap := lab.Metrics()
	if got := snap.Counters[MetricLabMisses]; got != 2 {
		t.Errorf("misses = %v, want 2", got)
	}
	if got := snap.Counters[MetricLabHits]; got != 1 {
		t.Errorf("hits = %v, want 1", got)
	}
	if got := snap.Counters[MetricLabDays]; got != 1 {
		t.Errorf("days built = %v, want 1", got)
	}
	h, ok := snap.Histograms[MetricLabCellMs]
	if !ok || h.Count != 2 {
		t.Fatalf("cell wall-time histogram = %+v, want 2 samples", h)
	}
	if h.Sum <= 0 {
		t.Errorf("cell wall time sum = %v, want positive", h.Sum)
	}
}

// TestPrefetchContextCanceled checks a pre-canceled context stops the
// sweep before any simulation and returns the wrapped context error.
func TestPrefetchContextCanceled(t *testing.T) {
	lab := NewLab(Options{Quick: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := lab.PrefetchContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap := lab.Metrics()
	if snap.Counters[MetricLabMisses] != 0 {
		t.Errorf("canceled prefetch still simulated %v cells", snap.Counters[MetricLabMisses])
	}
}

// TestPrefetchContextCompletes checks the context-free wrapper still
// fills the grid.
func TestPrefetchContextCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-grid prefetch")
	}
	lab := NewLab(Options{Quick: true, StepMin: 4})
	if err := lab.PrefetchContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := lab.Metrics()
	want := float64(len(atmos.Sites) * len(atmos.Seasons) * len(lab.Opts.Mixes()) * len(MPPTPolicies))
	if got := snap.Counters[MetricLabMisses]; got != want {
		t.Errorf("prefetch misses = %v, want %v", got, want)
	}
	if snap.Counters[MetricLabHits] != 0 {
		t.Errorf("prefetch should never hit its own cache, got %v hits", snap.Counters[MetricLabHits])
	}
}
