package exp

import (
	"fmt"
	"strings"

	"solarcore/internal/pv"
)

// Figure1Result is the motivation experiment: the fraction of available
// solar energy a fixed resistive load extracts as irradiance departs from
// the level it was matched at (Figure 1).
type Figure1Result struct {
	MatchedAtG float64
	Points     []Figure1Point
}

// Figure1Point is one irradiance sample of Figure 1.
type Figure1Point struct {
	Irradiance  float64
	Utilization float64
}

// Figure1 matches a resistive load to the module MPP at 1000 W/m² and
// reports energy utilization at the paper's four irradiance levels.
func Figure1() Figure1Result {
	m := pv.NewModule(pv.BP3180N())
	mpp := m.MPP(pv.STC)
	r := mpp.V / mpp.I
	res := Figure1Result{MatchedAtG: pv.GRef}
	for _, g := range []float64{1000, 800, 600, 400} {
		env := pv.Env{Irradiance: g, CellTemp: pv.TRef}
		res.Points = append(res.Points, Figure1Point{
			Irradiance:  g,
			Utilization: pv.UtilizationAtFixedLoad(m, env, r),
		})
	}
	return res
}

// Render draws the Figure 1 bar data.
func (r Figure1Result) Render() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{fmt.Sprintf("%.0f", p.Irradiance), pct(p.Utilization)}
	}
	return renderTable(
		fmt.Sprintf("Figure 1: fixed-load energy utilization (load matched at %.0f W/m²)", r.MatchedAtG),
		[]string{"Irradiance (W/m²)", "Energy utilization"}, rows)
}

// CurvePoint is one sample of an I-V / P-V sweep.
type CurvePoint struct {
	V float64
	I float64
	P float64
}

// CurveFamily is a set of I-V / P-V sweeps labelled by the swept parameter,
// the data behind Figures 6 and 7.
type CurveFamily struct {
	Title  string
	Labels []string
	Curves [][]CurvePoint
	MPPs   []pv.MPP
}

// Figure6 sweeps the module characteristic across irradiance levels
// G ∈ {400, 600, 800, 1000} W/m² at 25 °C (Figure 6).
func Figure6(samples int) CurveFamily {
	m := pv.NewModule(pv.BP3180N())
	fam := CurveFamily{Title: "Figure 6: I-V and P-V curves vs irradiance (T=25°C)"}
	for _, g := range []float64{400, 600, 800, 1000} {
		env := pv.Env{Irradiance: g, CellTemp: 25}
		fam.Labels = append(fam.Labels, fmt.Sprintf("G=%.0f", g))
		fam.Curves = append(fam.Curves, sweep(m, env, samples))
		fam.MPPs = append(fam.MPPs, m.MPP(env))
	}
	return fam
}

// Figure7 sweeps the module characteristic across cell temperatures
// T ∈ {0, 25, 50, 75} °C at 1000 W/m² (Figure 7).
func Figure7(samples int) CurveFamily {
	m := pv.NewModule(pv.BP3180N())
	fam := CurveFamily{Title: "Figure 7: I-V and P-V curves vs temperature (G=1000 W/m²)"}
	for _, tc := range []float64{0, 25, 50, 75} {
		env := pv.Env{Irradiance: 1000, CellTemp: tc}
		fam.Labels = append(fam.Labels, fmt.Sprintf("T=%.0f", tc))
		fam.Curves = append(fam.Curves, sweep(m, env, samples))
		fam.MPPs = append(fam.MPPs, m.MPP(env))
	}
	return fam
}

func sweep(g pv.Generator, env pv.Env, samples int) []CurvePoint {
	pts := pv.IVCurve(g, env, samples)
	out := make([]CurvePoint, len(pts))
	for i, p := range pts {
		out[i] = CurvePoint{V: p.V, I: p.I, P: p.P}
	}
	return out
}

// Render summarizes each curve of the family by its Voc, Isc and MPP, plus
// a power sparkline over voltage.
func (f CurveFamily) Render() string {
	var maxP float64
	for _, mpp := range f.MPPs {
		if mpp.P > maxP {
			maxP = mpp.P
		}
	}
	rows := make([][]string, len(f.Labels))
	for i := range f.Labels {
		curve := f.Curves[i]
		voc := curve[len(curve)-1].V
		isc := curve[0].I
		powers := make([]float64, 0, 40)
		for j := 0; j < len(curve); j += max(1, len(curve)/40) {
			powers = append(powers, curve[j].P)
		}
		rows[i] = []string{
			f.Labels[i], f2(voc), f2(isc),
			f2(f.MPPs[i].V), f2(f.MPPs[i].I), f1(f.MPPs[i].P),
			sparkline(powers, maxP),
		}
	}
	return renderTable(f.Title,
		[]string{"curve", "Voc(V)", "Isc(A)", "Vmpp(V)", "Impp(A)", "Pmax(W)", "P-V shape"}, rows)
}

// CSV emits the family as voltage,current,power rows per curve label.
func (f CurveFamily) CSV() string {
	var b strings.Builder
	b.WriteString("label,voltage_v,current_a,power_w\n")
	for i, label := range f.Labels {
		for _, p := range f.Curves[i] {
			fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f\n", label, p.V, p.I, p.P)
		}
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
