package exp

import (
	"strings"
	"sync"
	"testing"

	"solarcore/internal/atmos"
	"solarcore/internal/workload"
)

// sharedLab is computed once; experiments are read-only over its cache.
var (
	labOnce   sync.Once
	sharedLab *Lab
)

func quickLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		sharedLab = NewLab(Options{Quick: true})
		sharedLab.Prefetch()
	})
	return sharedLab
}

func TestFigure1Shape(t *testing.T) {
	f := Figure1()
	if len(f.Points) != 4 {
		t.Fatalf("points = %d", len(f.Points))
	}
	if f.Points[0].Utilization < 0.97 {
		t.Errorf("matched point utilization = %v", f.Points[0].Utilization)
	}
	// Monotone loss as irradiance departs the matched level.
	for i := 1; i < len(f.Points); i++ {
		if f.Points[i].Utilization >= f.Points[i-1].Utilization {
			t.Errorf("utilization not declining at %v W/m²", f.Points[i].Irradiance)
		}
	}
	// The paper's ">50% energy loss" at 400 W/m².
	if last := f.Points[len(f.Points)-1]; last.Utilization > 0.72 {
		t.Errorf("fixed load at 400 W/m² keeps %.0f%%, want heavy loss", last.Utilization*100)
	}
	if !strings.Contains(f.Render(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure6Shape(t *testing.T) {
	f := Figure6(64)
	if len(f.Curves) != 4 || len(f.MPPs) != 4 {
		t.Fatalf("curve count %d", len(f.Curves))
	}
	for i := 1; i < len(f.MPPs); i++ {
		if f.MPPs[i].P <= f.MPPs[i-1].P {
			t.Error("Pmax should rise with irradiance")
		}
	}
	if !strings.Contains(f.CSV(), "G=1000") {
		t.Error("CSV missing labels")
	}
	if !strings.Contains(f.Render(), "Pmax") {
		t.Error("render missing headers")
	}
}

func TestFigure7Shape(t *testing.T) {
	f := Figure7(64)
	for i := 1; i < len(f.MPPs); i++ {
		if f.MPPs[i].P >= f.MPPs[i-1].P {
			t.Error("Pmax should fall with temperature")
		}
		if f.MPPs[i].V >= f.MPPs[i-1].V {
			t.Error("Vmpp should shift left with temperature")
		}
	}
}

func TestFigures13And14(t *testing.T) {
	l := quickLab(t)
	f13 := Figure13(l)
	f14 := Figure14(l)
	if f13.Label != "Jan@AZ" || f14.Label != "Jul@AZ" {
		t.Errorf("labels %s / %s", f13.Label, f14.Label)
	}
	for _, fig := range []TrackingFigure{f13, f14} {
		if len(fig.Runs) != 3 {
			t.Fatalf("%s: %d runs", fig.Title, len(fig.Runs))
		}
		for i, run := range fig.Runs {
			if len(run.Series) == 0 {
				t.Fatalf("%s %s: empty series", fig.Title, fig.Mixes[i])
			}
		}
		if !strings.Contains(fig.Render(), "budget") {
			t.Error("render missing budget row")
		}
	}
	// High-EPI H1 must track with larger error than low-EPI L1 under the
	// same sky (the paper's ripple observation).
	h1, l1 := f13.Runs[0], f13.Runs[2]
	if h1.TrackErrGeoMean() <= l1.TrackErrGeoMean() {
		t.Errorf("H1 err %.3f not above L1 err %.3f", h1.TrackErrGeoMean(), l1.TrackErrGeoMean())
	}
}

func TestTable7Grid(t *testing.T) {
	l := quickLab(t)
	tb := Table7(l)
	if len(tb.Mixes) != len(l.Opts.Mixes()) {
		t.Fatalf("mix count %d", len(tb.Mixes))
	}
	var all []float64
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			errs := tb.Err[site.Code][season.String()]
			if len(errs) != len(tb.Mixes) {
				t.Fatalf("%s %s: %d errors", site.Code, season, len(errs))
			}
			all = append(all, errs...)
		}
	}
	for _, e := range all {
		if e < 0 || e > 0.5 {
			t.Errorf("tracking error %v outside a plausible band", e)
		}
	}
	if !strings.Contains(tb.Render(), "Table 7") {
		t.Error("render missing title")
	}
}

func TestFigure15Classes(t *testing.T) {
	l := quickLab(t)
	f := Figure15(l)
	if len(f.Rows) != 16 {
		t.Fatalf("%d rows, want 16 site-seasons", len(f.Rows))
	}
	classes := map[DeclineClass]int{}
	for _, row := range f.Rows {
		if len(row.Normalized) != len(FixedBudgets) {
			t.Fatalf("%s: %d points", row.Label, len(row.Normalized))
		}
		if row.Normalized[0] != 1 && row.Durations[0] > 0 {
			t.Errorf("%s: first point should normalize to 1", row.Label)
		}
		// Duration must not increase with threshold.
		for i := 1; i < len(row.Durations); i++ {
			if row.Durations[i] > row.Durations[i-1]+1e-9 {
				t.Errorf("%s: duration rose with threshold", row.Label)
			}
		}
		classes[row.Class]++
	}
	// The grid must exhibit at least two distinct decline behaviours, as in
	// the paper's three panels.
	if len(classes) < 2 {
		t.Errorf("all 16 patterns fell in one class: %v", classes)
	}
	if !strings.Contains(f.Render(), "Figure 15") {
		t.Error("render missing title")
	}
}

func TestFigures16And17(t *testing.T) {
	l := quickLab(t)
	f16 := Figure16(l)
	f17 := Figure17(l)
	for _, f := range []FixedSweepResult{f16, f17} {
		best := f.BestRatio()
		if best <= 0 || best >= 1 {
			t.Errorf("%s: best ratio %.2f, want inside (0,1) — fixed budgets must lose to tracking", f.Metric, best)
		}
		if !strings.Contains(f.Render(), "normalized") {
			t.Error("render missing title")
		}
	}
	// The headline: best fixed PTP well below SolarCore.
	if f17.BestRatio() > 0.85 {
		t.Errorf("best fixed PTP ratio %.2f, want clearly below 1", f17.BestRatio())
	}
}

func TestFigure18Utilization(t *testing.T) {
	l := quickLab(t)
	f := Figure18(l)
	avg := f.OverallAverage("MPPT&Opt")
	if avg < 0.75 || avg > 0.95 {
		t.Errorf("overall utilization %.3f, want in the paper's ~0.82 regime", avg)
	}
	// Resource ordering: AZ utilization ≥ TN utilization.
	if f.SiteAverage("AZ", "MPPT&Opt") <= f.SiteAverage("TN", "MPPT&Opt") {
		t.Error("AZ should utilize at least as well as TN")
	}
	if f.BatteryBands["Moderate"] <= f.BatteryBands["Low"] || f.BatteryBands["High"] <= f.BatteryBands["Moderate"] {
		t.Error("battery bands out of order")
	}
	if !strings.Contains(f.Render(), "Figure 18") {
		t.Error("render missing title")
	}
}

func TestFigure19Durations(t *testing.T) {
	l := quickLab(t)
	f := Figure19(l)
	for _, site := range atmos.Sites {
		shares := f.SolarShare[site.Code]
		if len(shares) != 4 {
			t.Fatalf("%s: %d seasons", site.Code, len(shares))
		}
		for si, s := range shares {
			if s < 0.3 || s > 1 {
				t.Errorf("%s %s: solar share %.2f implausible", site.Code, atmos.Seasons[si], s)
			}
		}
	}
	if !strings.Contains(f.Render(), "Figure 19") {
		t.Error("render missing title")
	}
}

func TestFigure20Buckets(t *testing.T) {
	l := quickLab(t)
	f := Figure20(l)
	if len(f.Buckets) != 5 {
		t.Fatalf("%d buckets", len(f.Buckets))
	}
	total := 0
	for _, b := range f.Buckets {
		total += b.Samples
	}
	want := 16 * len(l.Opts.Mixes()) * len(MPPTPolicies)
	if total > want {
		t.Errorf("bucketed %d runs, more than grid size %d", total, want)
	}
	if total < want/2 {
		t.Errorf("bucketed only %d of %d runs — durations outside all buckets?", total, want)
	}
	if !strings.Contains(f.Render(), "Figure 20") {
		t.Error("render missing title")
	}
}

func TestFigure21Ordering(t *testing.T) {
	l := quickLab(t)
	f := Figure21(l)
	opt, rr, ic := f.Average("MPPT&Opt"), f.Average("MPPT&RR"), f.Average("MPPT&IC")
	bu := f.Average("Battery-U")
	if !(opt > rr && rr > ic) {
		t.Errorf("policy ordering broken: Opt %.3f RR %.3f IC %.3f", opt, rr, ic)
	}
	if bu <= 1 {
		t.Errorf("Battery-U %.3f should beat Battery-L (1.0)", bu)
	}
	// Rough factors from the paper: Opt/RR in [1.05, 1.30], Opt/IC ≥ 1.15.
	if r := opt / rr; r < 1.02 || r > 1.35 {
		t.Errorf("Opt/RR = %.3f outside plausible band", r)
	}
	if r := opt / ic; r < 1.10 {
		t.Errorf("Opt/IC = %.3f, want a large gap", r)
	}
	if f.Average("nope") != 0 {
		t.Error("unknown series should average 0")
	}
	if !strings.Contains(f.Render(), "Figure 21") {
		t.Error("render missing title")
	}
}

func TestHeadlines(t *testing.T) {
	l := quickLab(t)
	h := Headlines(l)
	if h.AvgUtilization < 0.75 || h.AvgUtilization > 0.95 {
		t.Errorf("utilization headline %.3f", h.AvgUtilization)
	}
	if h.OptOverRR <= 0 {
		t.Errorf("Opt over RR %.3f, want positive", h.OptOverRR)
	}
	if h.OptOverIC <= h.OptOverRR {
		t.Errorf("Opt should gain more over IC (%.3f) than over RR (%.3f)", h.OptOverIC, h.OptOverRR)
	}
	if h.OptOverBestFixed < 0.20 {
		t.Errorf("Opt over best fixed %.3f, want a large advantage", h.OptOverBestFixed)
	}
	out := h.Render()
	if !strings.Contains(out, "paper") || !strings.Contains(out, "measured") {
		t.Error("headline render incomplete")
	}
}

func TestLabCaching(t *testing.T) {
	l := quickLab(t)
	m := l.Opts.Mixes()[0]
	a := l.MPPT(atmos.AZ, atmos.Jan, m, "MPPT&Opt")
	b := l.MPPT(atmos.AZ, atmos.Jan, m, "MPPT&Opt")
	if a != b {
		t.Error("cache miss on identical run")
	}
	d1 := l.Day(atmos.CO, atmos.Jul)
	d2 := l.Day(atmos.CO, atmos.Jul)
	if d1 != d2 {
		t.Error("day cache miss")
	}
}

func TestOptionsMixes(t *testing.T) {
	full := Options{}
	if len(full.Mixes()) != len(workload.Mixes) {
		t.Error("full options should return every mix")
	}
	quick := Options{Quick: true}
	if n := len(quick.Mixes()); n != 3 {
		t.Errorf("quick mixes = %d, want 3", n)
	}
	if quick.stepMin() != 2 || full.stepMin() != 1 {
		t.Error("step defaults wrong")
	}
	if (Options{StepMin: 5}).stepMin() != 5 {
		t.Error("explicit step ignored")
	}
}
