// Package exp regenerates every table and figure of the paper's evaluation
// (Section 6). Each experiment is a function that returns typed data plus a
// Render method producing the ASCII equivalent of the paper's plot; the
// experiment index in DESIGN.md maps paper figure/table numbers to these
// functions, and cmd/experiments drives them all.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"solarcore/internal/atmos"
	"solarcore/internal/fault"
	"solarcore/internal/lru"
	"solarcore/internal/obs"
	"solarcore/internal/power"
	"solarcore/internal/pv"
	"solarcore/internal/sched"
	"solarcore/internal/sim"
	"solarcore/internal/workload"
)

// Options controls experiment fidelity versus runtime.
type Options struct {
	// StepMin is the simulation sub-sampling step in minutes (default 1).
	StepMin float64
	// Quick restricts grids (fewer mixes) for fast smoke runs and tests.
	Quick bool
	// Day selects the generated weather day within each period.
	Day int
	// Faults, when armed, applies the fault schedule to every run the lab
	// performs; the schedule tag becomes part of the cache keys, so one
	// lab can serve faulted and clean grids without cross-talk.
	Faults *fault.Schedule
	// Watchdog tunes the degradation state machine of faulted runs (the
	// zero value takes the DESIGN.md §11 defaults).
	Watchdog fault.WatchdogConfig
	// CacheEntries caps the lab's LRU result cache (0 takes
	// DefaultCacheEntries; negative values clamp to 1), so unboundedly
	// long ablation sweeps cannot grow memory without limit. Evictions
	// are counted in MetricLabEvictions.
	CacheEntries int
}

// DefaultCacheEntries is the result-cache cap when Options.CacheEntries
// is zero: larger than the full site × season × mix × policy × budget
// grid, so the paper's experiments never evict.
const DefaultCacheEntries = 4096

func (o Options) cacheEntries() int {
	switch {
	case o.CacheEntries > 0:
		return o.CacheEntries
	case o.CacheEntries < 0:
		return 1
	}
	return DefaultCacheEntries
}

func (o Options) stepMin() float64 {
	if o.StepMin > 0 {
		return o.StepMin
	}
	if o.Quick {
		return 2
	}
	return 1
}

// Mixes returns the workload grid for these options.
func (o Options) Mixes() []workload.Mix {
	if !o.Quick {
		return workload.Mixes
	}
	var out []workload.Mix
	for _, name := range []string{"H1", "L1", "HM2"} {
		m, _ := workload.MixByName(name)
		out = append(out, m)
	}
	return out
}

// FixedBudgets is the power-transfer threshold sweep of Figures 15-17 (W).
var FixedBudgets = []float64{25, 50, 75, 100, 125}

// Metric names the Lab maintains in its registry (DESIGN.md §10).
const (
	// MetricLabHits / MetricLabMisses count grid-cell cache hits and
	// misses across the Lab's run methods.
	MetricLabHits   = "lab_cache_hits_total"
	MetricLabMisses = "lab_cache_misses_total"
	// MetricLabCellMs is a histogram of per-cell simulation wall time in
	// milliseconds (cache misses only — hits cost no simulation).
	MetricLabCellMs = "lab_cell_wall_ms"
	// MetricLabDays counts solar days materialized (weather synthesis +
	// MPP profile precomputation).
	MetricLabDays = "lab_days_built_total"
	// MetricLabEvictions counts grid cells displaced from the bounded
	// result cache by capacity pressure (Options.CacheEntries).
	MetricLabEvictions = "lab_cache_evictions_total"
)

// Lab caches solar days and simulation runs so that the many experiments
// sharing the site × season × mix × policy grid compute each run once. All
// methods are safe for concurrent use. The run cache is a bounded LRU
// (Options.CacheEntries), so arbitrarily long sweeps stay within a fixed
// memory budget at the price of recomputing evicted cells. The lab keeps
// an obs.Registry of cache hit/miss/eviction counters and per-cell
// wall-time histograms; Metrics exports it.
type Lab struct {
	Opts Options

	mu   sync.Mutex
	days map[string]*sim.SolarDay
	runs *lru.Cache[string, *sim.DayResult]
	reg  *obs.Registry
}

// NewLab builds an empty lab.
func NewLab(opts Options) *Lab {
	reg := obs.NewRegistry()
	return &Lab{
		Opts: opts,
		days: map[string]*sim.SolarDay{},
		runs: lru.NewWithEvict[string, *sim.DayResult](opts.cacheEntries(),
			func(string, *sim.DayResult) { reg.Add(MetricLabEvictions, 1) }),
		reg: reg,
	}
}

// Metrics exports the lab's cache and wall-time metrics.
func (l *Lab) Metrics() obs.Snapshot { return l.reg.Snapshot() }

// Day returns the (cached) solar day for a site and season: the synthetic
// weather trace bound to one BP3180N module.
func (l *Lab) Day(site atmos.Site, season atmos.Season) *sim.SolarDay {
	key := site.Code + season.String()
	l.mu.Lock()
	if d, ok := l.days[key]; ok {
		l.mu.Unlock()
		return d
	}
	l.mu.Unlock()

	tr := atmos.Generate(site, season, atmos.GenConfig{Day: l.Opts.Day})
	d, err := sim.NewSolarDay(tr, pv.BP3180N(), 1, 1)
	if err != nil {
		panic(fmt.Sprintf("exp: building solar day %s: %v", key, err))
	}
	l.reg.Add(MetricLabDays, 1)
	l.mu.Lock()
	l.days[key] = d
	l.mu.Unlock()
	return d
}

func (l *Lab) cached(key string) (*sim.DayResult, bool) {
	return l.runs.Get(key)
}

func (l *Lab) store(key string, r *sim.DayResult) {
	l.runs.Put(key, r)
}

// cell serves one grid cell through the cache, recording the hit/miss
// and — on a miss — the simulation wall time.
func (l *Lab) cell(key string, run func() *sim.DayResult) *sim.DayResult {
	if r, ok := l.cached(key); ok {
		l.reg.Add(MetricLabHits, 1)
		return r
	}
	l.reg.Add(MetricLabMisses, 1)
	start := time.Now()
	r := run()
	l.reg.Observe(MetricLabCellMs, time.Since(start).Seconds()*1000)
	l.store(key, r)
	return r
}

func (l *Lab) config(site atmos.Site, season atmos.Season, mix workload.Mix, keepSeries bool) sim.Config {
	return sim.Config{
		Day:        l.Day(site, season),
		Mix:        mix,
		StepMin:    l.Opts.stepMin(),
		KeepSeries: keepSeries,
		Faults:     l.Opts.Faults,
		Watchdog:   l.Opts.Watchdog,
	}
}

// faultTag is the cache-key suffix identifying the lab's fault schedule
// ("" when disarmed), keeping faulted and clean cells apart.
func (l *Lab) faultTag() string {
	if tag := l.Opts.Faults.Tag(); tag != "" {
		return "|" + tag
	}
	return ""
}

// MPPT runs (or recalls) a SolarCore day under the named Table 6 policy.
func (l *Lab) MPPT(site atmos.Site, season atmos.Season, mix workload.Mix, policy string) *sim.DayResult {
	key := fmt.Sprintf("%s|%s|%s|%s%s", site.Code, season, mix.Name, policy, l.faultTag())
	return l.cell(key, func() *sim.DayResult {
		alloc, ok := sched.ByName(policy)
		if !ok {
			panic("exp: unknown MPPT policy " + policy)
		}
		r, err := sim.RunMPPT(l.config(site, season, mix, false), alloc)
		if err != nil {
			panic(fmt.Sprintf("exp: %s: %v", key, err))
		}
		return r
	})
}

// MPPTSeries is MPPT with the per-minute budget/actual trace retained (for
// Figures 13-14). Series runs are not cached.
func (l *Lab) MPPTSeries(site atmos.Site, season atmos.Season, mix workload.Mix, policy string) *sim.DayResult {
	alloc, ok := sched.ByName(policy)
	if !ok {
		panic("exp: unknown MPPT policy " + policy)
	}
	r, err := sim.RunMPPT(l.config(site, season, mix, true), alloc)
	if err != nil {
		panic(fmt.Sprintf("exp: series run: %v", err))
	}
	return r
}

// Fixed runs (or recalls) a Fixed-Power day at the given budget.
func (l *Lab) Fixed(site atmos.Site, season atmos.Season, mix workload.Mix, budgetW float64) *sim.DayResult {
	key := fmt.Sprintf("%s|%s|%s|fixed%g%s", site.Code, season, mix.Name, budgetW, l.faultTag())
	return l.cell(key, func() *sim.DayResult {
		r, err := sim.RunFixed(l.config(site, season, mix, false), budgetW)
		if err != nil {
			panic(fmt.Sprintf("exp: %s: %v", key, err))
		}
		return r
	})
}

// Battery runs (or recalls) a battery-baseline day at the given overall
// conversion efficiency.
func (l *Lab) Battery(site atmos.Site, season atmos.Season, mix workload.Mix, eff float64) *sim.DayResult {
	key := fmt.Sprintf("%s|%s|%s|bat%g%s", site.Code, season, mix.Name, eff, l.faultTag())
	return l.cell(key, func() *sim.DayResult {
		r, err := sim.RunBattery(l.config(site, season, mix, false), eff)
		if err != nil {
			panic(fmt.Sprintf("exp: %s: %v", key, err))
		}
		return r
	})
}

// MPPTPolicies lists the Table 6 tracking policies in the paper's order.
var MPPTPolicies = []string{"MPPT&IC", "MPPT&RR", "MPPT&Opt"}

// BatteryEffs lists the Section 6.4 battery comparison brackets.
var BatteryEffs = []float64{power.BatteryUpperEff, power.BatteryLowerEff}

// parallelCtx runs fn(i) for i in [0,n) on all cores and waits. A
// cancellation on ctx stops feeding new jobs (in-flight ones finish).
// Worker errors are joined with the context error, so one failed cell
// never loses the others' results and never kills the process.
func parallelCtx(ctx context.Context, n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			mu.Lock()
			errs = append(errs, ctx.Err())
			mu.Unlock()
			break feed
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}

// Prefetch computes the full MPPT policy grid (site × season × mix ×
// policy) in parallel so that subsequent figure calls hit the cache.
func (l *Lab) Prefetch() {
	_ = l.PrefetchContext(context.Background())
}

// PrefetchContext is Prefetch under a cancellation context: when ctx is
// canceled the sweep stops scheduling new cells (already-running ones
// complete and stay cached) and the wrapped context error is returned. A
// cell that panics (a broken policy, a pathological day) is contained in
// its worker and surfaces as an error naming the cell; the rest of the
// grid still completes and stays cached.
func (l *Lab) PrefetchContext(ctx context.Context) error {
	type job struct {
		site   atmos.Site
		season atmos.Season
		mix    workload.Mix
		policy string
	}
	var jobs []job
	for _, site := range atmos.Sites {
		for _, season := range atmos.Seasons {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("exp: prefetch canceled: %w", err)
			}
			// Materialize days serially first: cheap, avoids duplicate work.
			l.Day(site, season)
			for _, mix := range l.Opts.Mixes() {
				for _, p := range MPPTPolicies {
					jobs = append(jobs, job{site, season, mix, p})
				}
			}
		}
	}
	if err := parallelCtx(ctx, len(jobs), func(i int) (err error) {
		j := jobs[i]
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("exp: prefetch cell %s/%s/%s/%s: %v",
					j.site.Code, j.season, j.mix.Name, j.policy, r)
			}
		}()
		l.MPPT(j.site, j.season, j.mix, j.policy)
		return nil
	}); err != nil {
		return fmt.Errorf("exp: prefetch: %w", err)
	}
	return nil
}
