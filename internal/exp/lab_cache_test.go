package exp

import (
	"fmt"
	"testing"

	"solarcore/internal/sim"
)

// TestLabCacheIsBounded pins the Options.CacheEntries contract: a lab
// with a 2-entry cache serving 3 distinct cells must evict the least
// recently used one (counted in MetricLabEvictions) and re-simulate it
// on the next request, while a recently-read cell stays a hit.
func TestLabCacheIsBounded(t *testing.T) {
	l := NewLab(Options{Quick: true, StepMin: 8, CacheEntries: 2})
	var sims int
	cell := func(day int) *sim.DayResult {
		return l.cell(fmt.Sprintf("cell-%d", day), func() *sim.DayResult {
			sims++
			return &sim.DayResult{Label: fmt.Sprintf("day-%d", day)}
		})
	}
	cell(0)
	cell(1)
	cell(0) // promote 0; cell 1 is now the LRU
	cell(2) // evicts 1
	snap := l.Metrics()
	if got := snap.Counters[MetricLabEvictions]; got != 1 {
		t.Fatalf("%s = %g after overflow, want 1", MetricLabEvictions, got)
	}
	cell(0) // still resident
	cell(1) // evicted: must re-simulate
	if sims != 4 {
		t.Errorf("simulated %d cells, want 4 (0, 1, 2 and the re-run of 1)", sims)
	}
	snap = l.Metrics()
	if hits, misses := snap.Counters[MetricLabHits], snap.Counters[MetricLabMisses]; hits != 2 || misses != 4 {
		t.Errorf("hits/misses = %g/%g, want 2/4", hits, misses)
	}
}

// TestLabCacheDefaultsAndClamps checks the CacheEntries normalization:
// zero takes the grid-sized default, negatives clamp to one entry.
func TestLabCacheDefaultsAndClamps(t *testing.T) {
	if got := (Options{}).cacheEntries(); got != DefaultCacheEntries {
		t.Errorf("zero CacheEntries = %d, want %d", got, DefaultCacheEntries)
	}
	if got := (Options{CacheEntries: -5}).cacheEntries(); got != 1 {
		t.Errorf("negative CacheEntries = %d, want clamp to 1", got)
	}
	if got := (Options{CacheEntries: 7}).cacheEntries(); got != 7 {
		t.Errorf("explicit CacheEntries = %d, want 7", got)
	}
}
