package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectLinear(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return 2*x - 3 }, 0, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1.5) > 1e-9 {
		t.Errorf("root = %v, want 1.5", x)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Bisect(f, 0, 1, 1e-9); err != nil || x != 0 {
		t.Errorf("lo endpoint root: got %v, %v", x, err)
	}
	if x, err := Bisect(f, -1, 0, 1e-9); err != nil || x != 0 {
		t.Errorf("hi endpoint root: got %v, %v", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestNewtonBisectCubic(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 8 }
	df := func(x float64) float64 { return 3 * x * x }
	x, err := NewtonBisect(f, df, 0, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2) > 1e-9 {
		t.Errorf("root = %v, want 2", x)
	}
}

func TestNewtonBisectMatchesBisect(t *testing.T) {
	// Property: on random monotone exponentials both solvers find the same root.
	prop := func(a, b uint8) bool {
		k := 0.1 + float64(a)/64 // growth rate
		c := 1 + float64(b)      // offset
		f := func(x float64) float64 { return math.Exp(k*x) - c }
		df := func(x float64) float64 { return k * math.Exp(k*x) }
		want := math.Log(c) / k
		if want > 100 {
			return true // outside bracket, skip
		}
		x1, err1 := Bisect(f, -1, 101, 1e-10)
		x2, err2 := NewtonBisect(f, df, -1, 101, 1e-10)
		return err1 == nil && err2 == nil &&
			math.Abs(x1-want) < 1e-6 && math.Abs(x2-want) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGoldenMaxParabola(t *testing.T) {
	x, fx := GoldenMax(func(x float64) float64 { return -(x - 3) * (x - 3) }, -10, 10, 1e-9)
	if math.Abs(x-3) > 1e-6 {
		t.Errorf("argmax = %v, want 3", x)
	}
	if math.Abs(fx) > 1e-9 {
		t.Errorf("max = %v, want 0", fx)
	}
}

func TestGoldenMaxQuickParabolas(t *testing.T) {
	// Property: GoldenMax finds the vertex of any downward parabola inside
	// the search interval.
	prop := func(a int8) bool {
		c := float64(a) / 16
		x, _ := GoldenMax(func(x float64) float64 { return -(x - c) * (x - c) }, -20, 20, 1e-10)
		return math.Abs(x-c) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(2, 4, 0.5); got != 3 {
		t.Errorf("Lerp(2,4,0.5) = %v, want 3", got)
	}
	if got := Lerp(2, 4, 0); got != 2 {
		t.Errorf("Lerp(2,4,0) = %v, want 2", got)
	}
	if got := Lerp(2, 4, 1); got != 4 {
		t.Errorf("Lerp(2,4,1) = %v, want 4", got)
	}
}

func TestApproxEq(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1.0, 1.0, 1e-12, true},
		{1.0, 1.0 + 1e-13, 1e-12, true},
		{1.0, 1.1, 1e-3, false},
		{1e9, 1e9 * (1 + 1e-10), 1e-9, true}, // relative criterion
		{0, 1e-15, 1e-12, true},              // absolute criterion near zero
		{math.NaN(), math.NaN(), 1, false},
		{math.NaN(), 0, 1, false},
		{math.Inf(1), math.Inf(1), 1e-12, true},
		{math.Inf(1), math.Inf(-1), 1e-12, false},
		{math.Inf(1), 1e308, 1e-12, false},
	}
	for _, c := range cases {
		if got := ApproxEq(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEq(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

// Non-finite inputs must fail cleanly (error or documented sentinel),
// never loop or return garbage.

func TestBisectNonFinite(t *testing.T) {
	lin := func(x float64) float64 { return x }
	cases := []struct {
		name   string
		f      func(float64) float64
		lo, hi float64
		tol    float64
	}{
		{"nan lo", lin, math.NaN(), 1, 1e-9},
		{"nan hi", lin, -1, math.NaN(), 1e-9},
		{"inf lo", lin, math.Inf(-1), 1, 1e-9},
		{"inf hi", lin, -1, math.Inf(1), 1e-9},
		{"nan tol", lin, -1, 1, math.NaN()},
		{"nan endpoint value", func(x float64) float64 { return math.NaN() }, -1, 1, 1e-9},
		{"nan mid value", func(x float64) float64 {
			if x == -1 || x == 1 {
				return x
			}
			return math.NaN()
		}, -1, 1, 1e-9},
	}
	for _, c := range cases {
		if _, err := Bisect(c.f, c.lo, c.hi, c.tol); err != ErrNonFinite {
			t.Errorf("Bisect %s: err = %v, want ErrNonFinite", c.name, err)
		}
	}
}

func TestNewtonBisectNonFinite(t *testing.T) {
	lin := func(x float64) float64 { return x }
	dlin := func(float64) float64 { return 1 }
	if _, err := NewtonBisect(lin, dlin, math.NaN(), 1, 1e-9); err != ErrNonFinite {
		t.Errorf("NaN lo: err = %v, want ErrNonFinite", err)
	}
	if _, err := NewtonBisect(lin, dlin, -1, math.Inf(1), 1e-9); err != ErrNonFinite {
		t.Errorf("Inf hi: err = %v, want ErrNonFinite", err)
	}
	nanMid := func(x float64) float64 {
		if x == -1 || x == 1 {
			return x
		}
		return math.NaN()
	}
	if _, err := NewtonBisect(nanMid, dlin, -1, 1, 1e-9); err != ErrNonFinite {
		t.Errorf("NaN objective: err = %v, want ErrNonFinite", err)
	}
	// A NaN derivative must not error or stall: it forces the bisection
	// fallback and the root is still found.
	nanDeriv := func(float64) float64 { return math.NaN() }
	x, err := NewtonBisect(func(x float64) float64 { return 2*x - 3 }, nanDeriv, 0, 10, 1e-12)
	if err != nil || math.Abs(x-1.5) > 1e-9 {
		t.Errorf("NaN derivative: x = %v, err = %v, want 1.5, nil", x, err)
	}
}

func TestGoldenMaxNonFinite(t *testing.T) {
	bump := func(x float64) float64 { return -x * x }
	for _, c := range []struct {
		name        string
		lo, hi, tol float64
	}{
		{"nan lo", math.NaN(), 1, 1e-9},
		{"inf hi", -1, math.Inf(1), 1e-9},
		{"nan tol", -1, 1, math.NaN()},
	} {
		x, fx := GoldenMax(bump, c.lo, c.hi, c.tol)
		if !math.IsNaN(x) || !math.IsNaN(fx) {
			t.Errorf("GoldenMax %s: got (%v, %v), want (NaN, NaN) sentinel", c.name, x, fx)
		}
	}
	// NaN objective: terminates and surfaces NaN rather than garbage.
	x, fx := GoldenMax(func(float64) float64 { return math.NaN() }, -1, 1, 1e-9)
	if !math.IsNaN(fx) {
		t.Errorf("NaN objective: f = %v, want NaN (x = %v)", fx, x)
	}
}
