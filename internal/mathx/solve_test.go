package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectLinear(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return 2*x - 3 }, 0, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1.5) > 1e-9 {
		t.Errorf("root = %v, want 1.5", x)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Bisect(f, 0, 1, 1e-9); err != nil || x != 0 {
		t.Errorf("lo endpoint root: got %v, %v", x, err)
	}
	if x, err := Bisect(f, -1, 0, 1e-9); err != nil || x != 0 {
		t.Errorf("hi endpoint root: got %v, %v", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestNewtonBisectCubic(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 8 }
	df := func(x float64) float64 { return 3 * x * x }
	x, err := NewtonBisect(f, df, 0, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2) > 1e-9 {
		t.Errorf("root = %v, want 2", x)
	}
}

func TestNewtonBisectMatchesBisect(t *testing.T) {
	// Property: on random monotone exponentials both solvers find the same root.
	prop := func(a, b uint8) bool {
		k := 0.1 + float64(a)/64 // growth rate
		c := 1 + float64(b)      // offset
		f := func(x float64) float64 { return math.Exp(k*x) - c }
		df := func(x float64) float64 { return k * math.Exp(k*x) }
		want := math.Log(c) / k
		if want > 100 {
			return true // outside bracket, skip
		}
		x1, err1 := Bisect(f, -1, 101, 1e-10)
		x2, err2 := NewtonBisect(f, df, -1, 101, 1e-10)
		return err1 == nil && err2 == nil &&
			math.Abs(x1-want) < 1e-6 && math.Abs(x2-want) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGoldenMaxParabola(t *testing.T) {
	x, fx := GoldenMax(func(x float64) float64 { return -(x - 3) * (x - 3) }, -10, 10, 1e-9)
	if math.Abs(x-3) > 1e-6 {
		t.Errorf("argmax = %v, want 3", x)
	}
	if math.Abs(fx) > 1e-9 {
		t.Errorf("max = %v, want 0", fx)
	}
}

func TestGoldenMaxQuickParabolas(t *testing.T) {
	// Property: GoldenMax finds the vertex of any downward parabola inside
	// the search interval.
	prop := func(a int8) bool {
		c := float64(a) / 16
		x, _ := GoldenMax(func(x float64) float64 { return -(x - c) * (x - c) }, -20, 20, 1e-10)
		return math.Abs(x-c) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(2, 4, 0.5); got != 3 {
		t.Errorf("Lerp(2,4,0.5) = %v, want 3", got)
	}
	if got := Lerp(2, 4, 0); got != 2 {
		t.Errorf("Lerp(2,4,0) = %v, want 2", got)
	}
	if got := Lerp(2, 4, 1); got != 4 {
		t.Errorf("Lerp(2,4,1) = %v, want 4", got)
	}
}
