package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are floored
// at eps so that a single zero sample (a perfectly tracked period) does not
// annihilate the mean; this matches how the paper aggregates relative
// tracking errors in Table 7.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-9
	logSum := 0.0
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return Lerp(s[i], s[i+1], frac)
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
