package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	// A zero sample is floored, not annihilating.
	if got := GeoMean([]float64{0, 1}); got <= 0 {
		t.Errorf("GeoMean with zero = %v, want > 0", got)
	}
}

func TestGeoMeanLEMean(t *testing.T) {
	// Property: AM-GM inequality on positive samples.
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = 0.001 + float64(r)
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev const = %v, want 0", got)
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("StdDev = %v, want 1", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
	if Sum(xs) != 9 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}
