// Package mathx provides the small numeric toolkit used throughout the
// simulator: scalar root finding, bounded maximization, and descriptive
// statistics. Everything is deterministic and allocation-free so the hot
// paths of the operating-point solver can call it per simulation step.
package mathx

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when a root finder is given an interval whose
// endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("mathx: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget before meeting its tolerance.
var ErrNoConverge = errors.New("mathx: iteration did not converge")

// ErrNonFinite is returned when a solver is given a NaN or infinite bound,
// or when the objective evaluates to NaN at a probed point — continuing
// would either loop on NaN comparisons or return garbage.
var ErrNonFinite = errors.New("mathx: non-finite bound or objective value")

// ApproxEq reports whether a and b agree within tol, using the larger of
// an absolute and a relative criterion: |a−b| ≤ max(tol, tol·max(|a|,|b|)).
// It is the approved way to compare computed floating-point quantities
// (solarvet's floateq analyzer forbids raw ==/!= outside this package).
// NaN compares unequal to everything, including itself; equal infinities
// compare equal.
func ApproxEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true // covers equal infinities and exact hits
	}
	d := math.Abs(a - b)
	if math.IsInf(d, 0) {
		return false // opposite infinities, or Inf vs finite
	}
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// checkBracket validates a solver interval and its endpoint samples:
// the bounds and tolerance must be finite, and the endpoint values must
// not be NaN (±Inf endpoint values are legal — they still carry a sign).
func checkBracket(lo, hi, tol, flo, fhi float64) error {
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) || math.IsNaN(tol) {
		return ErrNonFinite
	}
	if math.IsNaN(flo) || math.IsNaN(fhi) {
		return ErrNonFinite
	}
	return nil
}

// Bisect finds x in [lo, hi] with f(x) == 0 using bisection. f(lo) and
// f(hi) must have opposite signs (either may be zero). The result is within
// tol of the true root. Non-finite bounds, a NaN tolerance, or a NaN
// objective value fail with ErrNonFinite.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if err := checkBracket(lo, hi, tol, flo, fhi); err != nil {
		return 0, err
	}
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if math.IsNaN(fm) {
			return 0, ErrNonFinite
		}
		if fm == 0 || hi-lo < tol {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// NewtonBisect finds a root of f in [lo, hi] using Newton's method with the
// analytic derivative df, falling back to bisection whenever a Newton step
// leaves the bracket or stalls. It keeps the bracketing invariant, so it is
// as robust as Bisect but converges quadratically near the root.
// Non-finite bounds, a NaN tolerance, or a NaN objective value fail with
// ErrNonFinite (a NaN derivative only forces a bisection fallback step).
func NewtonBisect(f, df func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if err := checkBracket(lo, hi, tol, flo, fhi); err != nil {
		return 0, err
	}
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoBracket
	}
	x := 0.5 * (lo + hi)
	dxold := hi - lo
	for i := 0; i < 200; i++ {
		fx := f(x)
		if math.IsNaN(fx) {
			return 0, ErrNonFinite
		}
		if fx == 0 {
			return x, nil
		}
		// Shrink the bracket with the new sample.
		if (fx > 0) == (flo > 0) {
			lo, flo = x, fx
		} else {
			hi = x
		}
		if hi-lo < tol {
			return 0.5 * (lo + hi), nil
		}
		d := df(x)
		next := x - fx/d
		// Bisect when the Newton step leaves the bracket or is converging
		// slower than halving would (Numerical Recipes' rtsafe guard);
		// this keeps worst-case behaviour at bisection speed.
		var dx float64
		if d == 0 || math.IsNaN(next) || next <= lo || next >= hi ||
			math.Abs(2*fx) > math.Abs(dxold*d) {
			next = 0.5 * (lo + hi)
			dx = 0.5 * (hi - lo)
		} else {
			dx = math.Abs(next - x)
		}
		x, dxold = next, dx
	}
	return x, nil
}

// GoldenMax maximizes a unimodal function f on [lo, hi] by golden-section
// search and returns (argmax, max). The result is within tol of the true
// maximizer. For non-unimodal f it returns a local maximum.
//
// GoldenMax has no error return; its documented sentinel for bad input is
// (NaN, NaN): non-finite bounds or a NaN tolerance return it immediately,
// and a NaN objective value propagates into the returned maximum (the
// interval shrinks geometrically regardless of the comparison outcomes,
// so termination is unaffected).
func GoldenMax(f func(float64) float64, lo, hi, tol float64) (float64, float64) {
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) || math.IsNaN(tol) {
		return math.NaN(), math.NaN()
	}
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
	}
	x := 0.5 * (a + b)
	return x, f(x)
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b: t=0 gives a, t=1 gives b.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
