package atmos

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAtInterpolates(t *testing.T) {
	tr := &Trace{
		StepMin: 10,
		Samples: []Sample{
			{Minute: 450, Irradiance: 100, AmbientC: 10},
			{Minute: 460, Irradiance: 200, AmbientC: 20},
			{Minute: 470, Irradiance: 150, AmbientC: 15},
		},
	}
	g, a := tr.At(455)
	if g != 150 || a != 15 {
		t.Errorf("At(455) = %v, %v; want 150, 15", g, a)
	}
	// Clamping at both ends.
	if g, _ := tr.At(0); g != 100 {
		t.Errorf("At(0) = %v, want clamp to 100", g)
	}
	if g, _ := tr.At(9999); g != 150 {
		t.Errorf("At(9999) = %v, want clamp to 150", g)
	}
	// Exact sample hit.
	if g, _ := tr.At(460); math.Abs(g-200) > 1e-9 {
		t.Errorf("At(460) = %v, want 200", g)
	}
}

func TestAtEmptyAndSingle(t *testing.T) {
	var empty Trace
	if g, a := empty.At(500); g != 0 || a != 0 {
		t.Error("empty trace should return zeros")
	}
	single := &Trace{Samples: []Sample{{Minute: 500, Irradiance: 42, AmbientC: 7}}}
	if g, a := single.At(999); g != 42 || a != 7 {
		t.Errorf("single-sample At = %v, %v", g, a)
	}
	if single.Duration() != 0 {
		t.Error("single-sample duration should be 0")
	}
}

func TestInsolation(t *testing.T) {
	// Constant 600 W/m² for 60 minutes = 0.6 kWh/m².
	tr := &Trace{StepMin: 30, Samples: []Sample{
		{Minute: 0, Irradiance: 600}, {Minute: 30, Irradiance: 600}, {Minute: 60, Irradiance: 600},
	}}
	if got := tr.InsolationKWh(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("insolation = %v, want 0.6", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Generate(NC, Oct, GenConfig{StepMin: 5})
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, NC, Oct)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(orig.Samples) {
		t.Fatalf("samples %d vs %d", len(back.Samples), len(orig.Samples))
	}
	if back.StepMin != orig.StepMin {
		t.Errorf("step %v vs %v", back.StepMin, orig.StepMin)
	}
	for i := range back.Samples {
		if math.Abs(back.Samples[i].Irradiance-orig.Samples[i].Irradiance) > 0.01 {
			t.Fatalf("sample %d irradiance %v vs %v", i, back.Samples[i].Irradiance, orig.Samples[i].Irradiance)
		}
	}
	if back.Label() != "Oct@NC" {
		t.Errorf("label = %q", back.Label())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"minute,irradiance_wm2,ambient_c\nx,1,2\n",
		"minute,irradiance_wm2,ambient_c\n1,x,2\n",
		"minute,irradiance_wm2,ambient_c\n1,2,x\n",
		"minute,irradiance_wm2,ambient_c\n0,1,2\n10,1,2\n15,1,2\n", // non-uniform
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), AZ, Jan); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSiteSeasonLookups(t *testing.T) {
	s, err := SiteByCode("CO")
	if err != nil || s.Station != "BMS" {
		t.Errorf("SiteByCode(CO) = %+v, %v", s, err)
	}
	if _, err := SiteByCode("XX"); err == nil {
		t.Error("unknown site should error")
	}
	se, err := SeasonByName("Jul")
	if err != nil || se != Jul {
		t.Errorf("SeasonByName(Jul) = %v, %v", se, err)
	}
	if _, err := SeasonByName("Dec"); err == nil {
		t.Error("unknown season should error")
	}
	if got := Season(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown season String = %q", got)
	}
}

func TestClimateFallback(t *testing.T) {
	unknown := Site{Code: "ZZ"}
	cl := ClimateFor(unknown, Jan)
	if cl.PeakIrradiance == 0 {
		t.Error("fallback climate should be usable")
	}
}
