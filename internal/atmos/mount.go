package atmos

import "math"

// Mount selects how the panel is aimed. The synthetic traces are
// plane-of-array values for a fixed-tilt mount; a single-axis tracker
// follows the sun east to west and harvests substantially more in the
// mornings and evenings — but only from the direct beam, so its advantage
// fades under clouds.
type Mount int

// Mount options.
const (
	FixedTilt Mount = iota
	SingleAxisTracker
)

// String names the mount.
func (m Mount) String() string {
	switch m {
	case FixedTilt:
		return "fixed-tilt"
	case SingleAxisTracker:
		return "single-axis tracker"
	default:
		return "Mount(?)"
	}
}

// maxTrackerGain bounds the low-sun boost of a single-axis tracker over a
// fixed tilt (cosine-loss recovery saturates as the beam flattens).
const maxTrackerGain = 1.45

// WithMount returns a copy of the trace as seen by the given mount. For
// FixedTilt the trace is returned unchanged (it already is plane-of-array
// for a fixed tilt). For SingleAxisTracker each sample is scaled by the
// cosine-loss recovery factor, attenuated by the clear-sky index so that
// diffuse (cloudy) light — which a tracker cannot aim at — gains nothing.
func (t *Trace) WithMount(m Mount) *Trace {
	if m == FixedTilt {
		return t
	}
	out := &Trace{Site: t.Site, Season: t.Season, StepMin: t.StepMin, Samples: make([]Sample, len(t.Samples))}
	cl := ClimateFor(t.Site, t.Season)
	for i, s := range t.Samples {
		gain := trackerGain(cl, t.Season, t.Site.Latitude, s.Minute, s.Irradiance)
		out.Samples[i] = Sample{Minute: s.Minute, Irradiance: s.Irradiance * gain, AmbientC: s.AmbientC}
	}
	return out
}

// trackerGain computes the single-axis gain at one sample: the fixed mount
// loses cos(hour angle proxy) of the beam; the tracker recovers it, capped
// at maxTrackerGain, weighted by the clear-sky index kt (diffuse light has
// no direction to track).
//
// unit: latitude=°, minute=min, irradiance=W/m², return=ratio
func trackerGain(cl Climate, season Season, latitude, minute, irradiance float64) float64 {
	sr, ss := sunWindow(season, latitude)
	if minute <= sr || minute >= ss {
		return 1
	}
	elevation := math.Sin(math.Pi * (minute - sr) / (ss - sr)) // 0..1 proxy
	recover := 1 / math.Max(elevation, 1/maxTrackerGain)       // 1 at noon → cap at low sun

	clear := clearSky(cl, season, latitude, minute)
	kt := 1.0
	if clear > 0 {
		kt = math.Min(irradiance/clear, 1)
	}
	return 1 + (recover-1)*kt
}
