package atmos

import (
	"testing"
)

func TestFixedTiltIsIdentity(t *testing.T) {
	tr := Generate(AZ, Apr, GenConfig{})
	if got := tr.WithMount(FixedTilt); got != tr {
		t.Error("fixed tilt should return the trace unchanged")
	}
}

func TestTrackerGainsEnergy(t *testing.T) {
	for _, site := range []Site{AZ, TN} {
		tr := Generate(site, Apr, GenConfig{})
		tracked := tr.WithMount(SingleAxisTracker)
		gain := tracked.InsolationKWh() / tr.InsolationKWh()
		// Single-axis trackers typically harvest 15-35 % more daily energy.
		if gain < 1.05 || gain > 1.45 {
			t.Errorf("%s: tracker gain %.3f outside the plausible band", site.Code, gain)
		}
	}
}

func TestTrackerGainsMostAtLowSun(t *testing.T) {
	tr := Generate(AZ, Apr, GenConfig{})
	tracked := tr.WithMount(SingleAxisTracker)
	ratioAt := func(minute float64) float64 {
		g0, _ := tr.At(minute)
		g1, _ := tracked.At(minute)
		if g0 == 0 {
			return 1
		}
		return g1 / g0
	}
	morning := ratioAt(480) // 8:00
	noon := ratioAt(760)    // ~12:40 solar noon-ish
	if morning <= noon {
		t.Errorf("tracker should gain more in the morning: %.3f vs noon %.3f", morning, noon)
	}
	if noon > 1.1 {
		t.Errorf("noon gain %.3f, want near 1 (fixed tilt already faces the sun)", noon)
	}
}

func TestTrackerGainBounded(t *testing.T) {
	for _, season := range Seasons {
		tr := Generate(NC, season, GenConfig{})
		tracked := tr.WithMount(SingleAxisTracker)
		for i := range tr.Samples {
			g0, g1 := tr.Samples[i].Irradiance, tracked.Samples[i].Irradiance
			if g1 < g0-1e-9 {
				t.Fatalf("tracker lost energy at sample %d", i)
			}
			if g0 > 0 && g1/g0 > maxTrackerGain+1e-9 {
				t.Fatalf("gain %.3f exceeds cap at sample %d", g1/g0, i)
			}
		}
	}
}

func TestMountString(t *testing.T) {
	if FixedTilt.String() != "fixed-tilt" || SingleAxisTracker.String() != "single-axis tracker" {
		t.Error("mount names wrong")
	}
	if Mount(9).String() != "Mount(?)" {
		t.Error("unknown mount should stringify")
	}
}
