package atmos

import (
	"fmt"
	"strings"
	"testing"
)

// sampleMIDC builds a synthetic MIDC export covering the whole day at the
// given step.
func sampleMIDC(stepMin int) string {
	var b strings.Builder
	b.WriteString("DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Air Temperature [deg C]\n")
	for m := 0; m < 24*60; m += stepMin {
		ghi := 0.0
		if m > 6*60 && m < 18*60 {
			ghi = float64(800 - (m-12*60)*(m-12*60)/500)
		}
		if ghi < 0 {
			ghi = -1.5 // pyranometer night offset
		}
		fmt.Fprintf(&b, "1/15/2009,%02d:%02d,%.1f,%.1f\n", m/60, m%60, ghi, 5.0+float64(m)/200)
	}
	return b.String()
}

func TestReadMIDC(t *testing.T) {
	tr, err := ReadMIDC(strings.NewReader(sampleMIDC(10)), AZ, Jan)
	if err != nil {
		t.Fatal(err)
	}
	if tr.StepMin != 10 {
		t.Errorf("step = %v", tr.StepMin)
	}
	first, last := tr.Samples[0], tr.Samples[len(tr.Samples)-1]
	if first.Minute < DayStartMinute || last.Minute > DayEndMinute {
		t.Errorf("window [%v,%v] outside daytime", first.Minute, last.Minute)
	}
	for _, s := range tr.Samples {
		if s.Irradiance < 0 {
			t.Fatal("negative irradiance survived")
		}
	}
	if tr.Label() != "Jan@AZ" {
		t.Errorf("label = %q", tr.Label())
	}
	// The loaded trace must drive the rest of the stack.
	if tr.InsolationKWh() <= 0 {
		t.Error("no insolation")
	}
}

func TestReadMIDCHHMMFormat(t *testing.T) {
	data := "DATE,PST,Global Horizontal [W/m^2]\n" +
		"1/15/2009,0730,100\n1/15/2009,0740,120\n1/15/2009,0750,130\n"
	tr, err := ReadMIDC(strings.NewReader(data), CO, Apr)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 3 || tr.Samples[0].Minute != 450 {
		t.Errorf("samples: %+v", tr.Samples)
	}
	// Missing temperature column defaults to 25 °C.
	if tr.Samples[0].AmbientC != 25 {
		t.Errorf("default ambient = %v", tr.Samples[0].AmbientC)
	}
}

func TestReadMIDCErrors(t *testing.T) {
	cases := []string{
		"",
		"no,useful,columns\n1,2,3\n",
		"DATE,MST,Global Horizontal [W/m^2]\n1/15/2009,xx:yy,100\n",
		"DATE,MST,Global Horizontal [W/m^2]\n1/15/2009,08:00,abc\n",
		"DATE,MST,Global Horizontal [W/m^2]\n1/15/2009,08:00,100\n1/15/2009,08:10,100\n1/15/2009,08:15,100\n",
		"DATE,MST,Global Horizontal [W/m^2]\n1/15/2009,03:00,0\n1/15/2009,03:10,0\n", // all outside window
		"DATE,MST,Global Horizontal [W/m^2],Air Temperature [deg C]\n1/15/2009,08:00,100,bad\n1/15/2009,08:10,100,5\n",
	}
	for i, c := range cases {
		if _, err := ReadMIDC(strings.NewReader(c), AZ, Jan); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseMIDCTime(t *testing.T) {
	good := map[string]int{"07:30": 450, "0730": 450, "23:59": 1439, " 12:00 ": 720}
	for s, want := range good {
		got, err := parseMIDCTime(s)
		if err != nil || got != want {
			t.Errorf("parse %q = %d, %v; want %d", s, got, err, want)
		}
	}
	for _, s := range []string{"25:00", "12:61", "730", "", "ab:cd", "abcd"} {
		if _, err := parseMIDCTime(s); err == nil {
			t.Errorf("parse %q should fail", s)
		}
	}
}
