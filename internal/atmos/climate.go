package atmos

// Climate parameterizes the synthetic weather generator for one (site,
// season) pair: the clear-sky envelope, the stochastic cloud field, and the
// ambient temperature swing. Values are calibrated so that per-site daily
// insolation reproduces the resource ordering of Table 2 (AZ > CO > NC > TN)
// and the qualitative patterns the paper highlights — e.g. regular mid-winter
// Phoenix days (Figure 13) versus irregular monsoon-season days (Figure 14),
// and the highly variable April days at the eastern sites that dominate the
// Table 7 error column.
type Climate struct {
	PeakIrradiance float64 // clear-sky peak, W/m²

	// Cloud events per hour (Poisson rate); each event attenuates the
	// clear-sky curve by a factor in [1-DepthMax, 1-DepthMin] for a duration
	// in [DurMin, DurMax] minutes with cosine-smoothed edges.
	CloudRate float64 // events per hour, unit="Hz"
	DepthMin  float64 // minimum attenuation depth, fraction of clear-sky
	DepthMax  float64 // maximum attenuation depth, fraction of clear-sky
	DurMin    float64 // minutes
	DurMax    float64 // minutes

	// Haze is a slow day-scale attenuation band: the whole day is scaled by
	// a factor drawn uniformly from [1-Haze, 1].
	Haze float64

	TempMin float64 // °C, early-morning ambient
	TempMax float64 // °C, mid-afternoon ambient
}

// climates maps site code and season to generator parameters.
var climates = map[string][4]Climate{
	"AZ": {
		Jan: {PeakIrradiance: 800, CloudRate: 0.15, DepthMin: 0.10, DepthMax: 0.40, DurMin: 5, DurMax: 20, Haze: 0.05, TempMin: 8, TempMax: 20},
		Apr: {PeakIrradiance: 1030, CloudRate: 0.25, DepthMin: 0.15, DepthMax: 0.55, DurMin: 5, DurMax: 25, Haze: 0.05, TempMin: 15, TempMax: 30},
		Jul: {PeakIrradiance: 1060, CloudRate: 1.30, DepthMin: 0.30, DepthMax: 0.85, DurMin: 4, DurMax: 30, Haze: 0.08, TempMin: 29, TempMax: 41},
		Oct: {PeakIrradiance: 900, CloudRate: 0.25, DepthMin: 0.10, DepthMax: 0.45, DurMin: 5, DurMax: 20, Haze: 0.05, TempMin: 18, TempMax: 31},
	},
	"CO": {
		Jan: {PeakIrradiance: 640, CloudRate: 0.55, DepthMin: 0.20, DepthMax: 0.65, DurMin: 8, DurMax: 35, Haze: 0.10, TempMin: -5, TempMax: 7},
		Apr: {PeakIrradiance: 960, CloudRate: 0.80, DepthMin: 0.25, DepthMax: 0.70, DurMin: 8, DurMax: 40, Haze: 0.08, TempMin: 3, TempMax: 17},
		Jul: {PeakIrradiance: 1010, CloudRate: 0.85, DepthMin: 0.25, DepthMax: 0.75, DurMin: 5, DurMax: 35, Haze: 0.06, TempMin: 15, TempMax: 31},
		Oct: {PeakIrradiance: 790, CloudRate: 0.65, DepthMin: 0.20, DepthMax: 0.60, DurMin: 8, DurMax: 35, Haze: 0.10, TempMin: 4, TempMax: 18},
	},
	"NC": {
		Jan: {PeakIrradiance: 580, CloudRate: 0.90, DepthMin: 0.30, DepthMax: 0.80, DurMin: 10, DurMax: 50, Haze: 0.15, TempMin: 1, TempMax: 11},
		Apr: {PeakIrradiance: 930, CloudRate: 1.60, DepthMin: 0.40, DepthMax: 0.90, DurMin: 10, DurMax: 55, Haze: 0.12, TempMin: 10, TempMax: 22},
		Jul: {PeakIrradiance: 990, CloudRate: 0.70, DepthMin: 0.20, DepthMax: 0.60, DurMin: 6, DurMax: 30, Haze: 0.08, TempMin: 23, TempMax: 33},
		Oct: {PeakIrradiance: 700, CloudRate: 1.30, DepthMin: 0.35, DepthMax: 0.85, DurMin: 10, DurMax: 50, Haze: 0.15, TempMin: 12, TempMax: 23},
	},
	"TN": {
		Jan: {PeakIrradiance: 500, CloudRate: 1.20, DepthMin: 0.35, DepthMax: 0.85, DurMin: 12, DurMax: 60, Haze: 0.18, TempMin: -1, TempMax: 9},
		Apr: {PeakIrradiance: 890, CloudRate: 1.50, DepthMin: 0.40, DepthMax: 0.90, DurMin: 10, DurMax: 55, Haze: 0.12, TempMin: 9, TempMax: 23},
		Jul: {PeakIrradiance: 950, CloudRate: 1.00, DepthMin: 0.25, DepthMax: 0.70, DurMin: 8, DurMax: 35, Haze: 0.10, TempMin: 21, TempMax: 33},
		Oct: {PeakIrradiance: 650, CloudRate: 1.50, DepthMin: 0.40, DepthMax: 0.90, DurMin: 12, DurMax: 55, Haze: 0.18, TempMin: 9, TempMax: 22},
	},
}

// ClimateFor returns the generator parameters for a site and season. Unknown
// sites fall back to the TN (lowest-resource) climate so that experimental
// code never divides by a zero-power day.
func ClimateFor(site Site, season Season) Climate {
	cs, ok := climates[site.Code]
	if !ok {
		cs = climates["TN"]
	}
	return cs[season]
}
