package atmos

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"solarcore/internal/mathx"
)

// Sample is one meteorological observation.
type Sample struct {
	Minute     float64 // minutes after midnight, local time
	Irradiance float64 // W/m² on the panel plane
	AmbientC   float64 // ambient temperature, °C
}

// Trace is a uniformly sampled daytime record for one site and season.
type Trace struct {
	Site    Site
	Season  Season
	StepMin float64 // sampling step in minutes
	Samples []Sample
}

// Duration returns the covered timespan in minutes.
//
// unit: min
func (t *Trace) Duration() float64 {
	if len(t.Samples) < 2 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].Minute - t.Samples[0].Minute
}

// At returns the irradiance and ambient temperature at the given minute
// after midnight, linearly interpolated between samples and clamped to the
// trace endpoints.
//
// unit: minute=min, irradiance=W/m², ambientC=°C
func (t *Trace) At(minute float64) (irradiance, ambientC float64) {
	n := len(t.Samples)
	if n == 0 {
		return 0, 0
	}
	first := t.Samples[0]
	if n == 1 || minute <= first.Minute {
		return first.Irradiance, first.AmbientC
	}
	last := t.Samples[n-1]
	if minute >= last.Minute {
		return last.Irradiance, last.AmbientC
	}
	pos := (minute - first.Minute) / t.StepMin
	i := int(pos)
	if i >= n-1 {
		i = n - 2
	}
	frac := pos - float64(i)
	a, b := t.Samples[i], t.Samples[i+1]
	return mathx.Lerp(a.Irradiance, b.Irradiance, frac), mathx.Lerp(a.AmbientC, b.AmbientC, frac)
}

// InsolationKWh integrates irradiance over the trace and returns the daily
// insolation in kWh/m² (trapezoidal rule).
//
// unit: kWh/m²
func (t *Trace) InsolationKWh() float64 {
	if len(t.Samples) < 2 {
		return 0
	}
	wh := 0.0
	for i := 1; i < len(t.Samples); i++ {
		a, b := t.Samples[i-1], t.Samples[i]
		wh += 0.5 * (a.Irradiance + b.Irradiance) * (b.Minute - a.Minute) / 60
	}
	return wh / 1000
}

// PeakIrradiance returns the maximum sampled irradiance.
//
// unit: W/m²
func (t *Trace) PeakIrradiance() float64 {
	peak := 0.0
	for _, s := range t.Samples {
		if s.Irradiance > peak {
			peak = s.Irradiance
		}
	}
	return peak
}

// Label returns the "Jan@AZ" style identifier the paper uses for weather
// patterns.
func (t *Trace) Label() string { return t.Season.String() + "@" + t.Site.Code }

// WriteCSV writes the trace in the column layout minute,irradiance,ambient_c
// with a header row, so traces can be inspected or replaced by measured MIDC
// exports.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"minute", "irradiance_wm2", "ambient_c"}); err != nil {
		return err
	}
	for _, s := range t.Samples {
		rec := []string{
			strconv.FormatFloat(s.Minute, 'f', 2, 64),
			strconv.FormatFloat(s.Irradiance, 'f', 2, 64),
			strconv.FormatFloat(s.AmbientC, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or an equivalent MIDC export).
// Samples must be uniformly spaced and in time order.
func ReadCSV(r io.Reader, site Site, season Season) (*Trace, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("atmos: reading trace CSV: %w", err)
	}
	if len(recs) < 1 {
		return nil, fmt.Errorf("atmos: empty trace CSV")
	}
	if recs[0][0] == "minute" {
		recs = recs[1:]
	}
	tr := &Trace{Site: site, Season: season}
	for i, rec := range recs {
		if len(rec) != 3 {
			return nil, fmt.Errorf("atmos: row %d: want 3 columns, got %d", i+1, len(rec))
		}
		var s Sample
		if s.Minute, err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, fmt.Errorf("atmos: row %d minute: %w", i+1, err)
		}
		if s.Irradiance, err = strconv.ParseFloat(rec[1], 64); err != nil {
			return nil, fmt.Errorf("atmos: row %d irradiance: %w", i+1, err)
		}
		if s.AmbientC, err = strconv.ParseFloat(rec[2], 64); err != nil {
			return nil, fmt.Errorf("atmos: row %d ambient: %w", i+1, err)
		}
		tr.Samples = append(tr.Samples, s)
	}
	if len(tr.Samples) >= 2 {
		tr.StepMin = tr.Samples[1].Minute - tr.Samples[0].Minute
		for i := 1; i < len(tr.Samples); i++ {
			gap := tr.Samples[i].Minute - tr.Samples[i-1].Minute
			if gap <= 0 || mathxAbs(gap-tr.StepMin) > 1e-6 {
				return nil, fmt.Errorf("atmos: non-uniform sampling at row %d", i+1)
			}
		}
	}
	return tr, nil
}

func mathxAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
