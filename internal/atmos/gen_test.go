package atmos

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(AZ, Jan, GenConfig{})
	b := Generate(AZ, Jan, GenConfig{})
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
	c := Generate(AZ, Jan, GenConfig{Day: 1})
	same := true
	for i := range a.Samples {
		if a.Samples[i].Irradiance != c.Samples[i].Irradiance {
			same = false
			break
		}
	}
	if same {
		t.Error("different days should differ")
	}
}

func TestGenerateCoversDaytime(t *testing.T) {
	tr := Generate(CO, Apr, GenConfig{})
	first, last := tr.Samples[0], tr.Samples[len(tr.Samples)-1]
	if first.Minute != DayStartMinute {
		t.Errorf("starts at %v, want %v", first.Minute, DayStartMinute)
	}
	if last.Minute != DayEndMinute {
		t.Errorf("ends at %v, want %v", last.Minute, DayEndMinute)
	}
	if got := tr.Duration(); got != DayMinutes {
		t.Errorf("duration %v, want %v", got, DayMinutes)
	}
}

func TestIrradianceBounds(t *testing.T) {
	for _, site := range Sites {
		for _, season := range Seasons {
			cl := ClimateFor(site, season)
			tr := Generate(site, season, GenConfig{})
			for _, s := range tr.Samples {
				if s.Irradiance < 0 {
					t.Fatalf("%s: negative irradiance %v", tr.Label(), s.Irradiance)
				}
				if s.Irradiance > cl.PeakIrradiance*1.02 {
					t.Fatalf("%s: irradiance %v exceeds clear-sky peak %v", tr.Label(), s.Irradiance, cl.PeakIrradiance)
				}
			}
		}
	}
}

func TestResourceOrdering(t *testing.T) {
	// Table 2: AZ > CO > NC > TN in average daily insolation. Average over
	// several generated days to smooth cloud randomness.
	avg := func(site Site) float64 {
		sum := 0.0
		const days = 8
		for d := 0; d < days; d++ {
			sum += Generate(site, Jan, GenConfig{Day: d}).InsolationKWh()
			sum += Generate(site, Apr, GenConfig{Day: d}).InsolationKWh()
			sum += Generate(site, Jul, GenConfig{Day: d}).InsolationKWh()
			sum += Generate(site, Oct, GenConfig{Day: d}).InsolationKWh()
		}
		return sum / (4 * days)
	}
	az, co, nc, tn := avg(AZ), avg(CO), avg(NC), avg(TN)
	if !(az > co && co > nc && nc > tn) {
		t.Errorf("resource ordering violated: AZ=%.2f CO=%.2f NC=%.2f TN=%.2f", az, co, nc, tn)
	}
	if az < 4.5 || az > 7.5 {
		t.Errorf("AZ daily insolation %.2f kWh, want excellent-resource range", az)
	}
	if tn > 4.2 {
		t.Errorf("TN daily insolation %.2f kWh, want low-resource range", tn)
	}
}

func TestJulyAZIsIrregular(t *testing.T) {
	// Figure 13 vs 14: mid-summer Phoenix days fluctuate much more than
	// mid-winter ones. Compare total variation of irradiance.
	tv := func(tr *Trace) float64 {
		sum := 0.0
		for i := 1; i < len(tr.Samples); i++ {
			sum += math.Abs(tr.Samples[i].Irradiance - tr.Samples[i-1].Irradiance)
		}
		return sum
	}
	var jan, jul float64
	for d := 0; d < 6; d++ {
		jan += tv(Generate(AZ, Jan, GenConfig{Day: d}))
		jul += tv(Generate(AZ, Jul, GenConfig{Day: d}))
	}
	if jul < 1.5*jan {
		t.Errorf("Jul@AZ variation %.0f not clearly above Jan@AZ %.0f", jul, jan)
	}
}

func TestAmbientTemperatureShape(t *testing.T) {
	tr := Generate(TN, Jul, GenConfig{})
	cl := ClimateFor(TN, Jul)
	peakT, peakMin := -1e9, 0.0
	for _, s := range tr.Samples {
		if s.AmbientC > peakT {
			peakT, peakMin = s.AmbientC, s.Minute
		}
		if s.AmbientC < cl.TempMin-0.5 || s.AmbientC > cl.TempMax+0.5 {
			t.Fatalf("ambient %v outside [%v,%v]", s.AmbientC, cl.TempMin, cl.TempMax)
		}
	}
	if peakMin < 13*60 || peakMin > 16*60 {
		t.Errorf("temperature peaks at minute %v, want mid-afternoon", peakMin)
	}
}

func TestSeedOverride(t *testing.T) {
	a := Generate(AZ, Jan, GenConfig{Seed: 42})
	b := Generate(TN, Jan, GenConfig{Seed: 42})
	// Same seed but different climates: still different traces.
	if a.Samples[len(a.Samples)/2].Irradiance == b.Samples[len(b.Samples)/2].Irradiance {
		t.Error("different sites with same seed should still differ via climate")
	}
	c := Generate(AZ, Jan, GenConfig{Seed: 42})
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			t.Fatal("same seed should reproduce exactly")
		}
	}
}

func TestStepConfig(t *testing.T) {
	tr := Generate(AZ, Apr, GenConfig{StepMin: 10})
	if tr.StepMin != 10 {
		t.Errorf("StepMin = %v", tr.StepMin)
	}
	if got, want := len(tr.Samples), DayMinutes/10+1; got != want {
		t.Errorf("samples = %d, want %d", got, want)
	}
}

func TestGenerateRunDeterministicAndCorrelated(t *testing.T) {
	a := GenerateRun(NC, Oct, 5, GenConfig{})
	b := GenerateRun(NC, Oct, 5, GenConfig{})
	if len(a) != 5 {
		t.Fatalf("days = %d", len(a))
	}
	for d := range a {
		if len(a[d].Samples) != len(b[d].Samples) {
			t.Fatal("run not deterministic in length")
		}
		for i := range a[d].Samples {
			if a[d].Samples[i] != b[d].Samples[i] {
				t.Fatalf("day %d sample %d differs", d, i)
			}
		}
	}
	// Consecutive days differ (independent cloud fields).
	same := true
	for i := range a[0].Samples {
		if a[0].Samples[i].Irradiance != a[1].Samples[i].Irradiance {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive days identical")
	}
}

func TestGenerateRunPersistenceRaisesAutocorrelation(t *testing.T) {
	// Daily insolation of a persistent run should correlate with its lag-1
	// neighbour more than independent days do. Average the lag-1 sample
	// autocovariance sign over several long runs to keep the test stable.
	autocov := func(xs []float64) float64 {
		n := len(xs)
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		num := 0.0
		for i := 1; i < n; i++ {
			num += (xs[i] - mean) * (xs[i-1] - mean)
		}
		return num / float64(n-1)
	}
	var runCov, indCov float64
	const days = 24
	for rep := 0; rep < 4; rep++ {
		run := GenerateRun(TN, Oct, days, GenConfig{Day: rep * 100})
		var rs, is []float64
		for d := 0; d < days; d++ {
			rs = append(rs, run[d].InsolationKWh())
			is = append(is, Generate(TN, Oct, GenConfig{Day: rep*100 + d}).InsolationKWh())
		}
		runCov += autocov(rs)
		indCov += autocov(is)
	}
	if runCov <= indCov {
		t.Errorf("persistent-run lag-1 autocovariance %.4f not above independent %.4f", runCov, indCov)
	}
}

func TestGenerateRunClampsCount(t *testing.T) {
	if got := len(GenerateRun(AZ, Jan, 0, GenConfig{})); got != 1 {
		t.Errorf("n=0 gave %d days", got)
	}
}
