package atmos

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMIDC parses an NREL Measurement and Instrumentation Data Center
// daily export — the data source of the paper's Section 5 — into a Trace.
// MIDC exports are comma-separated with a header row naming each
// instrument column; time is a local "HH:MM" (or zero-padded "HHMM")
// column, irradiance is the station's global horizontal pyranometer, and
// air temperature comes from the met sensors, e.g.:
//
//	DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Air Temperature [deg C]
//	1/15/2009,07:30,12.4,3.2
//
// Column matching is by case-insensitive substring ("global horizontal",
// "air temp"), so station-to-station header variations parse unchanged.
// Samples outside the paper's 7:30–17:30 evaluation window are dropped,
// and the remainder must be uniformly spaced.
func ReadMIDC(r io.Reader, site Site, season Season) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("atmos: reading MIDC export: %w", err)
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("atmos: MIDC export has no data rows")
	}

	timeCol, ghiCol, tempCol := -1, -1, -1
	for i, h := range recs[0] {
		lh := strings.ToLower(h)
		switch {
		case timeCol < 0 && (lh == "mst" || lh == "est" || lh == "pst" || lh == "cst" ||
			strings.Contains(lh, "time")):
			timeCol = i
		case ghiCol < 0 && strings.Contains(lh, "global horizontal"):
			ghiCol = i
		case tempCol < 0 && strings.Contains(lh, "air temp"):
			tempCol = i
		}
	}
	if timeCol < 0 || ghiCol < 0 {
		return nil, fmt.Errorf("atmos: MIDC header lacks time or global-horizontal columns: %v", recs[0])
	}

	tr := &Trace{Site: site, Season: season}
	for i, rec := range recs[1:] {
		need := ghiCol
		if timeCol > need {
			need = timeCol
		}
		if tempCol > need {
			need = tempCol
		}
		if len(rec) <= need {
			return nil, fmt.Errorf("atmos: MIDC row %d too short", i+2)
		}
		minute, err := parseMIDCTime(rec[timeCol])
		if err != nil {
			return nil, fmt.Errorf("atmos: MIDC row %d: %w", i+2, err)
		}
		if minute < DayStartMinute || minute > DayEndMinute {
			continue
		}
		ghi, err := strconv.ParseFloat(strings.TrimSpace(rec[ghiCol]), 64)
		if err != nil {
			return nil, fmt.Errorf("atmos: MIDC row %d irradiance: %w", i+2, err)
		}
		if ghi < 0 {
			ghi = 0 // night-time pyranometer offsets read slightly negative
		}
		temp := 25.0
		if tempCol >= 0 {
			temp, err = strconv.ParseFloat(strings.TrimSpace(rec[tempCol]), 64)
			if err != nil {
				return nil, fmt.Errorf("atmos: MIDC row %d temperature: %w", i+2, err)
			}
		}
		tr.Samples = append(tr.Samples, Sample{Minute: float64(minute), Irradiance: ghi, AmbientC: temp})
	}
	if len(tr.Samples) < 2 {
		return nil, fmt.Errorf("atmos: MIDC export has no samples inside the 7:30-17:30 window")
	}
	tr.StepMin = tr.Samples[1].Minute - tr.Samples[0].Minute
	for i := 1; i < len(tr.Samples); i++ {
		gap := tr.Samples[i].Minute - tr.Samples[i-1].Minute
		if gap <= 0 || mathxAbs(gap-tr.StepMin) > 1e-6 {
			return nil, fmt.Errorf("atmos: MIDC samples not uniformly spaced at row %d", i+1)
		}
	}
	return tr, nil
}

// parseMIDCTime accepts "HH:MM" and zero-padded "HHMM" local times.
func parseMIDCTime(s string) (int, error) {
	s = strings.TrimSpace(s)
	var hh, mm int
	switch {
	case strings.Contains(s, ":"):
		parts := strings.SplitN(s, ":", 2)
		h, err := strconv.Atoi(parts[0])
		if err != nil {
			return 0, fmt.Errorf("bad time %q", s)
		}
		m, err := strconv.Atoi(parts[1])
		if err != nil {
			return 0, fmt.Errorf("bad time %q", s)
		}
		hh, mm = h, m
	case len(s) == 4:
		h, err := strconv.Atoi(s[:2])
		if err != nil {
			return 0, fmt.Errorf("bad time %q", s)
		}
		m, err := strconv.Atoi(s[2:])
		if err != nil {
			return 0, fmt.Errorf("bad time %q", s)
		}
		hh, mm = h, m
	default:
		return 0, fmt.Errorf("bad time %q", s)
	}
	if hh < 0 || hh > 23 || mm < 0 || mm > 59 {
		return 0, fmt.Errorf("time %q out of range", s)
	}
	return hh*60 + mm, nil
}
