package atmos

import (
	"strings"
	"testing"
)

// Fuzz targets guard the two external input surfaces — the trace CSV
// loader and the MIDC export parser. Run with `go test -fuzz FuzzReadCSV`
// for continuous fuzzing; under plain `go test` the seed corpus runs as
// regression cases. The invariant in both: arbitrary input may be
// rejected, but must never panic, and accepted input must produce a
// structurally sound trace.

func FuzzReadCSV(f *testing.F) {
	f.Add("minute,irradiance_wm2,ambient_c\n450,100,20\n451,110,20\n")
	f.Add("450,100,20\n451,110,20\n")
	f.Add("minute,irradiance_wm2,ambient_c\nx,y,z\n")
	f.Add("")
	f.Add("minute,irradiance_wm2,ambient_c\n450,100\n")
	f.Add("a,b,c\n1,2,3\n1,2,3\n")
	f.Add("minute,irradiance_wm2,ambient_c\n450,1e309,20\n451,1,20\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data), AZ, Jan)
		if err != nil {
			return
		}
		if len(tr.Samples) >= 2 && tr.StepMin <= 0 {
			t.Fatalf("accepted trace with non-positive step: %v", tr.StepMin)
		}
		for i := 1; i < len(tr.Samples); i++ {
			if tr.Samples[i].Minute <= tr.Samples[i-1].Minute {
				t.Fatal("accepted non-monotone trace")
			}
		}
		// Accepted traces must survive the downstream accessors.
		tr.At(500)
		tr.InsolationKWh()
		tr.Duration()
	})
}

func FuzzReadMIDC(f *testing.F) {
	f.Add("DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Air Temperature [deg C]\n1/15/2009,07:30,12.4,3.2\n1/15/2009,07:40,14.0,3.3\n")
	f.Add("DATE,PST,Global Horizontal [W/m^2]\n1/15/2009,0730,100\n1/15/2009,0740,120\n")
	f.Add("garbage")
	f.Add("DATE,MST,Global Horizontal [W/m^2]\n1/15/2009,99:99,100\n")
	f.Add("DATE,MST,Global Horizontal [W/m^2]\n")
	f.Add("DATE,MST,Global Horizontal [W/m^2]\n1/15/2009,08:00,-50\n1/15/2009,08:10,50\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadMIDC(strings.NewReader(data), TN, Oct)
		if err != nil {
			return
		}
		for _, s := range tr.Samples {
			if s.Irradiance < 0 {
				t.Fatal("accepted negative irradiance")
			}
			if s.Minute < DayStartMinute || s.Minute > DayEndMinute {
				t.Fatalf("accepted sample outside the daytime window: %v", s.Minute)
			}
		}
		tr.At(600)
		tr.PeakIrradiance()
	})
}

func FuzzParseMIDCTime(f *testing.F) {
	for _, s := range []string{"07:30", "0730", "25:99", "", ":", "ab:cd", "12345", "1:2"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := parseMIDCTime(s)
		if err != nil {
			return
		}
		if m < 0 || m >= 24*60 {
			t.Fatalf("accepted out-of-range minute %d from %q", m, s)
		}
	})
}
