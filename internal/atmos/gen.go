package atmos

import (
	"hash/fnv"
	"math"
	"math/rand"

	"solarcore/internal/mathx"
)

// GenConfig controls the synthetic weather generator. The zero value asks
// for the defaults: 1-minute sampling, day 0, seed derived from
// site/season/day.
type GenConfig struct {
	StepMin float64 // sampling step in minutes (default 1)
	Day     int     // day index within the period; varies the seed
	Seed    int64   // explicit seed; 0 derives one from site/season/day
}

// Generate produces a deterministic synthetic daytime trace for the given
// site and season: the clear-sky envelope of ClimateFor modulated by a
// Poisson cloud field, a day-scale haze factor, and ±1 % sensor jitter.
// Identical inputs always produce identical traces.
func Generate(site Site, season Season, cfg GenConfig) *Trace {
	if cfg.StepMin <= 0 {
		cfg.StepMin = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = deriveSeed(site, season, cfg.Day)
	}
	rng := rand.New(rand.NewSource(seed))
	cl := ClimateFor(site, season)
	haze := 1 - cl.Haze*rng.Float64()
	return generate(site, season, cfg, rng, cl, haze)
}

// GenerateRun produces n consecutive days with weather persistence: the
// day-scale haze factor follows an AR(1) process (fronts linger for a few
// days), while the fast cloud field stays independent day to day. The run
// is deterministic for a given site, season and base day index.
func GenerateRun(site Site, season Season, n int, cfg GenConfig) []*Trace {
	if n < 1 {
		n = 1
	}
	if cfg.StepMin <= 0 {
		cfg.StepMin = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = deriveSeed(site, season, cfg.Day)
	}
	rng := rand.New(rand.NewSource(seed))
	cl := ClimateFor(site, season)

	const persistence = 0.6
	haze := 1 - cl.Haze*rng.Float64()
	out := make([]*Trace, n)
	for d := 0; d < n; d++ {
		dayCfg := cfg
		dayCfg.Day = cfg.Day + d
		out[d] = generate(site, season, dayCfg, rng, cl, haze)
		fresh := 1 - cl.Haze*rng.Float64()
		haze = persistence*haze + (1-persistence)*fresh
	}
	return out
}

// generate renders one day from an already-seeded stream and haze factor.
func generate(site Site, season Season, cfg GenConfig, rng *rand.Rand, cl Climate, haze float64) *Trace {
	clouds := genClouds(rng, cl)

	n := int(float64(DayMinutes)/cfg.StepMin) + 1
	tr := &Trace{Site: site, Season: season, StepMin: cfg.StepMin, Samples: make([]Sample, n)}
	for i := 0; i < n; i++ {
		minute := float64(DayStartMinute) + float64(i)*cfg.StepMin
		g := clearSky(cl, season, site.Latitude, minute) * haze * cloudFactor(clouds, minute)
		g *= 1 + 0.02*(rng.Float64()-0.5) // ±1 % sensor/atmospheric jitter
		if g < 0 {
			g = 0
		}
		tr.Samples[i] = Sample{
			Minute:     minute,
			Irradiance: g,
			AmbientC:   ambient(cl, minute),
		}
	}
	return tr
}

// deriveSeed hashes the site code, season and day index into a stable seed.
func deriveSeed(site Site, season Season, day int) int64 {
	h := fnv.New64a()
	h.Write([]byte(site.Code))
	h.Write([]byte(season.String()))
	h.Write([]byte{byte(day), byte(day >> 8)})
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}

// sunWindow returns sunrise and sunset in minutes after midnight for the
// season, with a small latitude correction (higher latitude → shorter winter
// days, longer summer days).
//
// unit: latitude=°, sunrise=min, sunset=min
func sunWindow(season Season, latitude float64) (sunrise, sunset float64) {
	// Baselines for ~36°N.
	var sr, ss float64
	switch season {
	case Jan:
		sr, ss = 7*60+20, 17*60+40
	case Apr:
		sr, ss = 6*60+30, 19*60+00
	case Jul:
		sr, ss = 6*60+00, 19*60+45
	default: // Oct
		sr, ss = 7*60+00, 18*60+15
	}
	dLat := latitude - 36
	var stretch float64 // minutes of half-day change per degree latitude
	switch season {
	case Jan:
		stretch = -6
	case Jul:
		stretch = +6
	default:
		stretch = 0
	}
	sr -= dLat * stretch / 2
	ss += dLat * stretch / 2
	return sr, ss
}

// clearSky returns the cloudless irradiance at the given minute: a
// sin^1.3 arc between sunrise and sunset scaled to the climate's peak.
//
// unit: latitude=°, minute=min, return=W/m²
func clearSky(cl Climate, season Season, latitude, minute float64) float64 {
	sr, ss := sunWindow(season, latitude)
	if minute <= sr || minute >= ss {
		return 0
	}
	phase := math.Sin(math.Pi * (minute - sr) / (ss - sr))
	return cl.PeakIrradiance * math.Pow(phase, 1.3)
}

// cloudEvent is one passing cloud: a cosine-edged attenuation dip.
type cloudEvent struct {
	start, dur, depth float64
}

// genClouds draws a Poisson process of cloud events over the daytime window.
func genClouds(rng *rand.Rand, cl Climate) []cloudEvent {
	var evs []cloudEvent
	if cl.CloudRate <= 0 {
		return evs
	}
	t := float64(DayStartMinute)
	for {
		gap := rng.ExpFloat64() / cl.CloudRate * 60 // events/hour → minutes
		t += gap
		if t >= float64(DayEndMinute) {
			return evs
		}
		evs = append(evs, cloudEvent{
			start: t,
			dur:   mathx.Lerp(cl.DurMin, cl.DurMax, rng.Float64()),
			depth: mathx.Lerp(cl.DepthMin, cl.DepthMax, rng.Float64()),
		})
	}
}

// cloudFactor multiplies the attenuation of all events covering the minute.
// Each event ramps in and out with a raised-cosine profile so the trace has
// the smooth dips of real irradiance records rather than square notches.
//
// unit: minute=min, return=ratio
func cloudFactor(evs []cloudEvent, minute float64) float64 {
	f := 1.0
	for _, e := range evs {
		if minute < e.start || minute > e.start+e.dur {
			continue
		}
		phase := (minute - e.start) / e.dur            // 0..1 through the event
		shape := 0.5 * (1 - math.Cos(2*math.Pi*phase)) // 0→1→0
		f *= 1 - e.depth*shape
	}
	return f
}

// ambient returns the diurnal ambient temperature: rises from the morning
// minimum to the mid-afternoon maximum (~14:30) and falls off afterwards.
//
// unit: minute=min, return=°C
func ambient(cl Climate, minute float64) float64 {
	const tMin, tPeak = 7 * 60, 14*60 + 30
	phase := (minute - tMin) / (tPeak - tMin)
	if phase < 0 {
		phase = 0
	}
	s := math.Sin(math.Pi / 2 * phase)
	return cl.TempMin + (cl.TempMax-cl.TempMin)*s
}
