// Package atmos supplies the atmospheric inputs of the simulation:
// irradiance and ambient-temperature traces for the four NREL MIDC
// measurement sites the paper evaluates (Table 2), across the four seasons
// (mid Jan/Apr/Jul/Oct), over the paper's daytime window 7:30–17:30.
//
// The paper replays measured MIDC records; this package substitutes a
// deterministic synthetic generator — a clear-sky curve modulated by a
// seeded stochastic cloud process calibrated per site and season — plus CSV
// import/export so measured records can be dropped in unchanged. The
// controller only ever sees the resulting (G, T) sample stream.
package atmos

import "fmt"

// Daytime window of the evaluation: 7:30 to 17:30 local (Section 5).
const (
	DayStartMinute = 7*60 + 30  // minutes after midnight
	DayEndMinute   = 17*60 + 30 // minutes after midnight
	DayMinutes     = DayEndMinute - DayStartMinute
)

// Site is one of the evaluated geographic locations (Table 2).
type Site struct {
	Code          string  // short code used throughout results ("AZ")
	Station       string  // MIDC station id ("PFCI")
	Name          string  // human-readable location
	Potential     string  // solar resource class from Table 2
	InsolationKWh float64 // nominal resource, kWh/m²/day
	Latitude      float64 // degrees north
}

// The four evaluated sites (Table 2).
var (
	AZ = Site{Code: "AZ", Station: "PFCI", Name: "Phoenix, AZ", Potential: "Excellent", InsolationKWh: 6.0, Latitude: 33.4}
	CO = Site{Code: "CO", Station: "BMS", Name: "Golden, CO", Potential: "Good", InsolationKWh: 5.5, Latitude: 39.7}
	NC = Site{Code: "NC", Station: "ECSU", Name: "Elizabeth City, NC", Potential: "Moderate", InsolationKWh: 4.5, Latitude: 36.3}
	TN = Site{Code: "TN", Station: "ORNL", Name: "Oak Ridge, TN", Potential: "Low", InsolationKWh: 3.8, Latitude: 36.0}
)

// Sites lists the evaluated sites in the paper's order (best resource first).
var Sites = []Site{AZ, CO, NC, TN}

// SiteByCode returns the site with the given code.
func SiteByCode(code string) (Site, error) {
	for _, s := range Sites {
		if s.Code == code {
			return s, nil
		}
	}
	return Site{}, fmt.Errorf("atmos: unknown site %q", code)
}

// Season selects one of the four evaluated mid-month periods.
type Season int

// The evaluated seasons (middle of Jan, Apr, Jul and Oct 2009).
const (
	Jan Season = iota
	Apr
	Jul
	Oct
)

// Seasons lists the evaluated seasons in calendar order.
var Seasons = []Season{Jan, Apr, Jul, Oct}

// String returns the three-letter month name.
func (s Season) String() string {
	switch s {
	case Jan:
		return "Jan"
	case Apr:
		return "Apr"
	case Jul:
		return "Jul"
	case Oct:
		return "Oct"
	default:
		return fmt.Sprintf("Season(%d)", int(s))
	}
}

// SeasonByName parses a three-letter month name ("Jan", "Apr", "Jul", "Oct").
func SeasonByName(name string) (Season, error) {
	for _, s := range Seasons {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("atmos: unknown season %q", name)
}
