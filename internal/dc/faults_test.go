package dc

import (
	"reflect"
	"testing"

	"solarcore/internal/atmos"
	"solarcore/internal/fault"
	"solarcore/internal/pv"
	"solarcore/internal/sim"
)

func faultTestDay(t *testing.T) *sim.SolarDay {
	t.Helper()
	tr := atmos.Generate(atmos.AZ, atmos.Apr, atmos.GenConfig{})
	day, err := sim.NewSolarDay(tr, pv.BP3180N(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	return day
}

func TestRunDayFaultsDisarmedIdentical(t *testing.T) {
	day := faultTestDay(t)
	clean := RunDay(day, testCluster(t, 4, 25, 0), 2)
	for _, s := range []*fault.Schedule{
		nil,
		{},
		fault.NewSchedule(0, &fault.CloudBurst{W: fault.Window{T0: 600, T1: 700}, I: 0}),
	} {
		got := RunDayFaults(day, testCluster(t, 4, 25, 0), 2, s)
		if !reflect.DeepEqual(clean, got) {
			t.Errorf("disarmed schedule %v diverges from RunDay", s)
		}
	}
}

func TestRunDayFaultsCloudBurst(t *testing.T) {
	day := faultTestDay(t)
	clean := RunDay(day, testCluster(t, 4, 25, 0), 2)
	s := fault.NewSchedule(0, &fault.CloudBurst{W: fault.Window{T0: 600, T1: 720}, I: 0.9})
	res := RunDayFaults(day, testCluster(t, 4, 25, 0), 2, s)
	if res.FaultWindows != 1 {
		t.Errorf("fault windows = %d, want 1", res.FaultWindows)
	}
	if res.SolarWh >= clean.SolarWh {
		t.Errorf("deep mid-day burst cost nothing: %.1f vs clean %.1f Wh", res.SolarWh, clean.SolarWh)
	}
	if res.SolarWh <= 0.25*clean.SolarWh {
		t.Errorf("two-hour burst should not erase the day: %.1f vs clean %.1f Wh", res.SolarWh, clean.SolarWh)
	}
}

func TestRunDayFaultsCoreFailRestoresCaps(t *testing.T) {
	day := faultTestDay(t)
	clean := RunDay(day, testCluster(t, 4, 25, 0), 2)
	c := testCluster(t, 4, 25, 0)
	s := fault.NewSchedule(0, &fault.CoreFail{W: fault.Window{T0: 600, T1: 700}, I: 0.5})
	res := RunDayFaults(day, c, 2, s)
	if res.GInstrSolar >= clean.GInstrSolar {
		t.Errorf("half the cores failing cost nothing: %.0f vs %.0f", res.GInstrSolar, clean.GInstrSolar)
	}
	// The caps are lifted before the cluster is handed back.
	for _, n := range c.Nodes {
		top := n.Chip.NumLevels() - 1
		for i := 0; i < n.Chip.NumCores(); i++ {
			if cap := n.Chip.LevelCap(i); cap != top {
				t.Fatalf("node %s core %d still capped at %d after the run", n.Name, i, cap)
			}
		}
	}
}
