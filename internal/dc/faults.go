package dc

import (
	"solarcore/internal/fault"
	"solarcore/internal/sim"
)

// RunDayFaults is RunDay under a fault-injection schedule (DESIGN.md
// §11). Power-path faults — cloud bursts, string disconnects, converter
// derates — scale the shared array's deliverable budget (the cluster's
// budget model is linear in the MPP, so the fault factors compose
// multiplicatively), and core faults cap every node chip through the
// mcore level-cap mechanism. Sensor and solver faults have no cluster
// analogue and are ignored here. A nil or disarmed schedule takes the
// exact RunDay code path.
//
// unit: stepMin=min
func RunDayFaults(day *sim.SolarDay, c *Cluster, stepMin float64, s *fault.Schedule) DayResult {
	rt := s.Runtime()
	if !rt.Armed() {
		return runDay(day, c, stepMin, nil)
	}
	return runDay(day, c, stepMin, &clusterFaults{rt: rt, prev: map[fault.Injector]bool{}})
}

// clusterFaults is one cluster day's fault state: the schedule runtime,
// the previously-active injector set (for window counting) and whether
// node chips currently carry fault level caps.
type clusterFaults struct {
	rt      *fault.Runtime
	prev    map[fault.Injector]bool
	capped  bool
	windows int
}

// applyAt counts window openings and pushes core-fault level caps onto
// every node chip (restoring them once the window closes).
//
// unit: t=min
func (cf *clusterFaults) applyAt(t float64, c *Cluster) {
	now := cf.rt.Active(t)
	set := make(map[fault.Injector]bool, len(now))
	for _, inj := range now {
		set[inj] = true
		if !cf.prev[inj] {
			cf.windows++
		}
	}
	cf.prev = set
	if cf.rt.ConstrainsCores(t) {
		for _, n := range c.Nodes {
			top := n.Chip.NumLevels() - 1
			for i := 0; i < n.Chip.NumCores(); i++ {
				// cap is validated in range by construction
				_ = n.Chip.SetLevelCap(i, cf.rt.CoreCap(t, i, n.Chip.NumCores(), top))
			}
		}
		cf.capped = true
	} else if cf.capped {
		cf.uncap(c)
	}
}

// uncap restores every node chip's level caps to unconstrained.
func (cf *clusterFaults) uncap(c *Cluster) {
	for _, n := range c.Nodes {
		top := n.Chip.NumLevels() - 1
		for i := 0; i < n.Chip.NumCores(); i++ {
			_ = n.Chip.SetLevelCap(i, top) // top is always in range
		}
	}
	cf.capped = false
}

// budgetScale composes the active power-path fault factors at minute t:
// irradiance scale (cloud), generator current scale (string cut) and
// converter efficiency scale (derate). 1 when no power-path fault is
// active.
//
// unit: t=min, return=ratio
func (cf *clusterFaults) budgetScale(t float64) float64 {
	if !cf.rt.PowerPathActive(t) {
		return 1
	}
	_, eff := cf.rt.Converter(t)
	return cf.rt.IrradianceScale(t) * cf.rt.GeneratorScale(t) * eff
}
