// Package dc scales SolarCore from one processor to a solar-powered
// cluster — the datacenter setting the paper's introduction motivates
// (solar-augmented facilities at Google/Microsoft/Yahoo) and the regime
// the related work (Stewart & Shen's "some joules are more precious")
// studies. A Cluster shares one PV array across server nodes; the
// throughput-power-ratio principle applies hierarchically:
//
//   - within a node, marginal watts go to the best core (package sched);
//   - across nodes, marginal watts go to the node whose best core offers
//     the highest return — and because an active node pays a fixed PSU/fan
//     overhead, low budgets naturally consolidate work onto few nodes and
//     park the rest, with no explicit consolidation policy.
//
// Per-node power caps (rack branch-circuit limits) constrain allocation.
package dc

import (
	"fmt"
	"math"

	"solarcore/internal/mcore"
	"solarcore/internal/sim"
	"solarcore/internal/workload"
)

// Config sizes a cluster.
type Config struct {
	// Nodes is the server count.
	Nodes int
	// Chip configures every node's processor (DefaultConfig when zero).
	Chip mcore.Config
	// Mixes assigns one Table 5 workload per node (round-robin reuse when
	// shorter than Nodes).
	Mixes []workload.Mix
	// NodeOverheadW is the fixed PSU/fan/board power of an active node —
	// the consolidation incentive. Zero disables it.
	//
	// unit: W
	NodeOverheadW float64
	// NodeCapW is a per-node power cap including overhead (rack branch
	// limit). Zero means uncapped.
	//
	// unit: W
	NodeCapW float64
}

func (c *Config) fillDefaults() error {
	if c.Nodes < 1 {
		return fmt.Errorf("dc: cluster needs at least one node")
	}
	if c.Chip.Cores == 0 {
		c.Chip = mcore.DefaultConfig()
	}
	if len(c.Mixes) == 0 {
		return fmt.Errorf("dc: cluster needs at least one workload mix")
	}
	if c.NodeOverheadW < 0 || c.NodeCapW < 0 {
		return fmt.Errorf("dc: negative node overhead or cap")
	}
	return nil
}

// Node is one server of the cluster.
type Node struct {
	Name string
	Chip *mcore.Chip

	overheadW float64 // unit: W
	capW      float64 // unit: W
}

// Active reports whether any core is ungated.
func (n *Node) Active() bool {
	for i := 0; i < n.Chip.NumCores(); i++ {
		if n.Chip.Level(i) != mcore.Gated {
			return true
		}
	}
	return false
}

// Power returns the node draw including overhead when active.
//
// unit: minute=min, return=W
func (n *Node) Power(minute float64) float64 {
	p := n.Chip.Power(minute)
	if p > 0 {
		p += n.overheadW
	}
	return p
}

// Throughput returns the node throughput in GIPS.
//
// unit: minute=min, return=GIPS
func (n *Node) Throughput(minute float64) float64 { return n.Chip.Throughput(minute) }

// Cluster is a set of nodes sharing one solar budget.
type Cluster struct {
	Nodes []*Node
}

// New builds a cluster: every node gets a fresh chip (all cores gated)
// running its assigned mix.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	c := &Cluster{}
	for i := 0; i < cfg.Nodes; i++ {
		chip, err := mcore.NewChip(cfg.Chip)
		if err != nil {
			return nil, err
		}
		mix := cfg.Mixes[i%len(cfg.Mixes)]
		if err := mix.Apply(chip); err != nil {
			return nil, fmt.Errorf("dc: node %d: %w", i, err)
		}
		_ = chip.SetAllLevels(mcore.Gated) // fresh chip: Gated is always a valid level
		c.Nodes = append(c.Nodes, &Node{
			Name:      fmt.Sprintf("node%02d", i),
			Chip:      chip,
			overheadW: cfg.NodeOverheadW,
			capW:      cfg.NodeCapW,
		})
	}
	return c, nil
}

// Power returns the total cluster draw.
//
// unit: minute=min, return=W
func (c *Cluster) Power(minute float64) float64 {
	sum := 0.0
	for _, n := range c.Nodes {
		sum += n.Power(minute)
	}
	return sum
}

// Throughput returns the total cluster throughput in GIPS.
//
// unit: minute=min, return=GIPS
func (c *Cluster) Throughput(minute float64) float64 {
	sum := 0.0
	for _, n := range c.Nodes {
		sum += n.Throughput(minute)
	}
	return sum
}

// ActiveNodes counts nodes with at least one running core.
func (c *Cluster) ActiveNodes() int {
	count := 0
	for _, n := range c.Nodes {
		if n.Active() {
			count++
		}
	}
	return count
}

// bestRaise finds the cluster-wide best core raise: (node, core, ΔT/ΔP,
// ΔP) honoring node caps and charging activation overhead to the first
// core of a parked node.
//
// unit: minute=min, dP=W
func (c *Cluster) bestRaise(minute float64) (ni, core int, dP float64, ok bool) {
	bestTPR := 0.0
	ni = -1
	for i, n := range c.Nodes {
		activation := 0.0
		if !n.Active() {
			activation = n.overheadW
		}
		nodePower := n.Power(minute)
		for ci := 0; ci < n.Chip.NumCores(); ci++ {
			dT, dp, can := n.Chip.DeltaUp(ci, minute)
			if !can || dp <= 0 {
				continue
			}
			dp += activation
			if n.capW > 0 && nodePower+dp > n.capW {
				continue
			}
			if tpr := dT / dp; tpr > bestTPR {
				ni, core, dP, bestTPR = i, ci, dp, tpr
			}
		}
	}
	return ni, core, dP, ni >= 0
}

// Raise gives one DVFS step of power to the best core in the cluster;
// false when saturated (or every remaining step violates a cap).
//
// unit: minute=min
func (c *Cluster) Raise(minute float64) bool {
	ni, core, _, ok := c.bestRaise(minute)
	if !ok {
		return false
	}
	return c.Nodes[ni].Chip.StepUp(core)
}

// Lower reclaims one DVFS step from the cluster-wide worst core, crediting
// the node overhead when the step parks the node.
//
// unit: minute=min
func (c *Cluster) Lower(minute float64) bool {
	bestCost := math.Inf(1)
	ni, core := -1, -1
	for i, n := range c.Nodes {
		lastCore := n.Active() && ungatedCores(n.Chip) == 1
		for ci := 0; ci < n.Chip.NumCores(); ci++ {
			dT, dp, can := n.Chip.DeltaDown(ci, minute)
			if !can {
				continue
			}
			if lastCore && n.Chip.Level(ci) == 0 {
				dp += n.overheadW // parking the node reclaims its overhead
			}
			if dp <= 0 {
				continue
			}
			if cost := dT / dp; cost < bestCost {
				ni, core, bestCost = i, ci, cost
			}
		}
	}
	if ni < 0 {
		return false
	}
	return c.Nodes[ni].Chip.StepDown(core)
}

func ungatedCores(chip *mcore.Chip) int {
	count := 0
	for i := 0; i < chip.NumCores(); i++ {
		if chip.Level(i) != mcore.Gated {
			count++
		}
	}
	return count
}

// FillBudget adapts the cluster to sit as close under the budget as the
// step granularity allows and returns the resulting power.
//
// unit: minute=min, budget=W, return=W
func (c *Cluster) FillBudget(minute, budget float64) float64 {
	guard := 0
	for c.Power(minute) > budget && guard < 1<<14 {
		if !c.Lower(minute) {
			break
		}
		guard++
	}
	for guard < 1<<14 {
		ni, core, dP, ok := c.bestRaise(minute)
		if !ok || c.Power(minute)+dP > budget {
			break
		}
		c.Nodes[ni].Chip.StepUp(core)
		guard++
	}
	return c.Power(minute)
}

// DayResult summarizes a cluster day.
type DayResult struct {
	SolarWh     float64 // unit: Wh
	UtilityWh   float64 // unit: Wh
	GInstrSolar float64 // unit: Ginstr
	SolarMin    float64 // unit: min
	DaytimeMin  float64 // unit: min
	MPPEnergyWh float64 // unit: Wh
	// MeanActiveNodes is the time-average of the active node count while
	// solar-powered.
	MeanActiveNodes float64
	// FaultWindows counts fault windows opened over the day (zero except
	// under RunDayFaults with an armed schedule).
	FaultWindows int
	// PerNode breaks energy and work down by server.
	PerNode []NodeDayResult
}

// NodeDayResult is one server's share of a cluster day.
type NodeDayResult struct {
	Name        string
	SolarWh     float64 // unit: Wh
	GInstrSolar float64 // unit: Ginstr
	ActiveMin   float64 // unit: min
}

// Utilization returns solar energy used over the theoretical maximum.
//
// unit: ratio
func (r *DayResult) Utilization() float64 {
	if r.MPPEnergyWh <= 0 {
		return 0
	}
	return r.SolarWh / r.MPPEnergyWh
}

// RunDay drives the cluster through a solar day with 10-minute budget
// refills and per-minute shedding, mirroring the single-node engine.
//
// unit: stepMin=min
func RunDay(day *sim.SolarDay, c *Cluster, stepMin float64) DayResult {
	return runDay(day, c, stepMin, nil)
}

// runDay is the common day loop behind RunDay and RunDayFaults; a nil
// fault state takes the exact clean code path.
//
// unit: stepMin=min
func runDay(day *sim.SolarDay, c *Cluster, stepMin float64, cf *clusterFaults) DayResult {
	if stepMin <= 0 {
		stepMin = 1
	}
	const trackPeriod = 10.0
	const eta = 0.96
	res := DayResult{DaytimeMin: day.DaytimeMinutes(), MPPEnergyWh: day.MPPEnergyWh()}
	res.PerNode = make([]NodeDayResult, len(c.Nodes))
	for i, n := range c.Nodes {
		res.PerNode[i].Name = n.Name
	}
	var activeSum float64
	var activeN int
	start, end := day.StartMinute(), day.EndMinute()
	for t0 := start; t0 < end; t0 += trackPeriod {
		t1 := math.Min(t0+trackPeriod, end)
		refill := eta * day.MPPAt(t0) * 0.95
		if cf != nil {
			cf.applyAt(t0, c)
			refill *= cf.budgetScale(t0)
		}
		c.FillBudget(t0, refill)
		for t := t0; t < t1-1e-9; t += stepMin {
			dt := math.Min(stepMin, t1-t)
			budget := eta * day.MPPAt(t)
			if cf != nil {
				cf.applyAt(t, c)
				budget *= cf.budgetScale(t)
			}
			p := c.Power(t)
			for p > budget {
				if !c.Lower(t) {
					break
				}
				p = c.Power(t)
			}
			if p > 0 && p <= budget {
				res.SolarWh += p * dt / 60
				res.SolarMin += dt
				res.GInstrSolar += c.Throughput(t) * dt * 60
				for i, n := range c.Nodes {
					res.PerNode[i].SolarWh += n.Power(t) * dt / 60
					res.PerNode[i].GInstrSolar += n.Throughput(t) * dt * 60
					if n.Active() {
						res.PerNode[i].ActiveMin += dt
					}
				}
				activeSum += float64(c.ActiveNodes())
				activeN++
			} else {
				res.UtilityWh += p * dt / 60
			}
		}
	}
	if activeN > 0 {
		res.MeanActiveNodes = activeSum / float64(activeN)
	}
	if cf != nil {
		cf.uncap(c) // don't leave mid-window caps on a reused cluster
		res.FaultWindows = cf.windows
	}
	return res
}

// FillBudgetFairShare is the naive cluster baseline: every node receives an
// equal slice of the budget and fills it independently with its own TPR
// table. It ignores cross-node differences and pays every node's overhead,
// which is exactly what the global allocator avoids — keep it for
// comparisons.
//
// unit: minute=min, budget=W, return=W
func (c *Cluster) FillBudgetFairShare(minute, budget float64) float64 {
	share := budget / float64(len(c.Nodes))
	for _, n := range c.Nodes {
		// Shed anything over the share first.
		for n.Power(minute) > share {
			lowered := false
			worst, worstTPR := -1, math.Inf(1)
			for ci := 0; ci < n.Chip.NumCores(); ci++ {
				dT, dp, ok := n.Chip.DeltaDown(ci, minute)
				if !ok || dp <= 0 {
					continue
				}
				if cost := dT / dp; cost < worstTPR {
					worst, worstTPR = ci, cost
				}
			}
			if worst >= 0 {
				lowered = n.Chip.StepDown(worst)
			}
			if !lowered {
				break
			}
		}
		// Fill up to the share.
		for {
			activation := 0.0
			if !n.Active() {
				activation = n.overheadW
			}
			best, bestTPR := -1, 0.0
			for ci := 0; ci < n.Chip.NumCores(); ci++ {
				dT, dp, ok := n.Chip.DeltaUp(ci, minute)
				if !ok || dp <= 0 {
					continue
				}
				dp += activation
				if n.Power(minute)+dp > share {
					continue
				}
				if n.capW > 0 && n.Power(minute)+dp > n.capW {
					continue
				}
				if tpr := dT / dp; tpr > bestTPR {
					best, bestTPR = ci, tpr
				}
			}
			if best < 0 {
				break
			}
			n.Chip.StepUp(best)
		}
	}
	return c.Power(minute)
}
