package dc

import (
	"testing"

	"solarcore/internal/atmos"
	"solarcore/internal/mcore"
	"solarcore/internal/pv"
	"solarcore/internal/sim"
	"solarcore/internal/workload"
)

func testCluster(t *testing.T, nodes int, overhead, cap float64) *Cluster {
	t.Helper()
	var mixes []workload.Mix
	for _, name := range []string{"HM2", "ML2", "M2"} {
		m, err := workload.MixByName(name)
		if err != nil {
			t.Fatal(err)
		}
		mixes = append(mixes, m)
	}
	c, err := New(Config{Nodes: nodes, Mixes: mixes, NodeOverheadW: overhead, NodeCapW: cap})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := New(Config{Nodes: 2}); err == nil {
		t.Error("no mixes should error")
	}
	m, _ := workload.MixByName("H1")
	if _, err := New(Config{Nodes: 2, Mixes: []workload.Mix{m}, NodeOverheadW: -1}); err == nil {
		t.Error("negative overhead should error")
	}
	if _, err := New(Config{Nodes: 1, Mixes: []workload.Mix{{Name: "bad", Programs: []string{"x"}}}}); err == nil {
		t.Error("bad mix should error")
	}
}

func TestClusterStartsParked(t *testing.T) {
	c := testCluster(t, 4, 20, 0)
	if c.ActiveNodes() != 0 {
		t.Errorf("fresh cluster has %d active nodes", c.ActiveNodes())
	}
	if c.Power(0) != 0 {
		t.Errorf("parked cluster draws %v W", c.Power(0))
	}
}

func TestFillBudgetRespectsBudget(t *testing.T) {
	c := testCluster(t, 4, 20, 0)
	for _, budget := range []float64{30, 80, 200, 500, 1200} {
		p := c.FillBudget(0, budget)
		if p > budget+1e-9 {
			t.Errorf("budget %v: filled to %v", budget, p)
		}
	}
}

func TestConsolidationEmergesFromOverhead(t *testing.T) {
	// At a budget that could feed 4 nodes' chips but wastes 4 overheads,
	// the TPR allocator should concentrate on fewer nodes.
	withOverhead := testCluster(t, 4, 40, 0)
	withOverhead.FillBudget(0, 120)
	free := testCluster(t, 4, 0, 0)
	free.FillBudget(0, 120)
	if a, b := withOverhead.ActiveNodes(), free.ActiveNodes(); a >= b {
		t.Errorf("overheaded cluster active=%d, free cluster active=%d — overhead should consolidate", a, b)
	}
	if withOverhead.ActiveNodes() == 0 {
		t.Error("consolidated to nothing")
	}
}

func TestNodeCapRespected(t *testing.T) {
	c := testCluster(t, 3, 10, 80)
	c.FillBudget(0, 10000)
	for _, n := range c.Nodes {
		if p := n.Power(0); p > 80+1e-9 {
			t.Errorf("%s exceeds its 80 W cap: %.1f W", n.Name, p)
		}
	}
	// Cluster saturates below nodes × cap.
	if total := c.Power(0); total > 3*80+1e-9 {
		t.Errorf("cluster power %v exceeds cap sum", total)
	}
}

func TestGlobalBeatsUniformSplit(t *testing.T) {
	// Global TPR allocation across heterogeneous nodes must beat giving
	// each node an equal share of the budget.
	budget := 260.0
	global := testCluster(t, 4, 25, 0)
	global.FillBudget(0, budget)
	globalT := global.Throughput(0)

	uniform := testCluster(t, 4, 25, 0)
	share := budget / 4
	for _, n := range uniform.Nodes {
		// Fill each node independently to its share (overhead included).
		for {
			best, bestTPR, bestDP := -1, 0.0, 0.0
			activation := 0.0
			if !n.Active() {
				activation = 25
			}
			for ci := 0; ci < n.Chip.NumCores(); ci++ {
				dT, dp, ok := n.Chip.DeltaUp(ci, 0)
				if !ok || dp <= 0 {
					continue
				}
				dp += activation
				if n.Power(0)+dp > share {
					continue
				}
				if tpr := dT / dp; tpr > bestTPR {
					best, bestTPR, bestDP = ci, tpr, dp
				}
			}
			if best < 0 {
				break
			}
			_ = bestDP
			n.Chip.StepUp(best)
		}
	}
	uniformT := uniform.Throughput(0)
	if globalT < uniformT {
		t.Errorf("global %v GIPS below uniform split %v", globalT, uniformT)
	}
}

func TestRaiseLowerSaturation(t *testing.T) {
	c := testCluster(t, 2, 15, 0)
	raises := 0
	for c.Raise(0) {
		raises++
		if raises > 500 {
			t.Fatal("raise never saturates")
		}
	}
	if c.ActiveNodes() != 2 {
		t.Error("full cluster should have every node active")
	}
	lowers := 0
	for c.Lower(0) {
		lowers++
		if lowers > 500 {
			t.Fatal("lower never saturates")
		}
	}
	if raises != lowers || c.Power(0) != 0 {
		t.Errorf("raises %d, lowers %d, final power %v", raises, lowers, c.Power(0))
	}
}

func TestRunDayCluster(t *testing.T) {
	// A 4-node cluster on a 4-module array.
	tr := atmos.Generate(atmos.AZ, atmos.Apr, atmos.GenConfig{})
	day, err := sim.NewSolarDay(tr, pv.BP3180N(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t, 4, 25, 0)
	res := RunDay(day, c, 2)
	if res.SolarWh <= 0 || res.GInstrSolar <= 0 {
		t.Fatalf("empty cluster day: %+v", res)
	}
	if u := res.Utilization(); u < 0.5 || u > 1 {
		t.Errorf("cluster utilization %.3f", u)
	}
	if res.MeanActiveNodes <= 0 || res.MeanActiveNodes > 4 {
		t.Errorf("mean active nodes %.2f", res.MeanActiveNodes)
	}
	if res.SolarMin > res.DaytimeMin+1e-6 {
		t.Error("solar minutes exceed daytime")
	}
}

func TestRunDayDefaultsAndChipOverride(t *testing.T) {
	tr := atmos.Generate(atmos.TN, atmos.Jul, atmos.GenConfig{})
	day, err := sim.NewSolarDay(tr, pv.BP3180N(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := workload.MixByName("L1")
	cfg := Config{Nodes: 2, Mixes: []workload.Mix{m}, Chip: mcore.BigLittleConfig()}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := RunDay(day, c, 0) // default step
	if res.SolarWh <= 0 {
		t.Errorf("heterogeneous cluster day empty: %+v", res)
	}
}

func TestFairShareBaseline(t *testing.T) {
	budget := 260.0
	global := testCluster(t, 4, 25, 0)
	global.FillBudget(0, budget)

	fair := testCluster(t, 4, 25, 0)
	p := fair.FillBudgetFairShare(0, budget)
	if p > budget+1e-9 {
		t.Errorf("fair share filled to %v over budget %v", p, budget)
	}
	if fair.ActiveNodes() < global.ActiveNodes() {
		t.Errorf("fair share should spread wider: %d vs %d nodes",
			fair.ActiveNodes(), global.ActiveNodes())
	}
	if global.Throughput(0) < fair.Throughput(0) {
		t.Errorf("global TPR %v GIPS below fair share %v", global.Throughput(0), fair.Throughput(0))
	}
}

func TestFairShareTinyBudget(t *testing.T) {
	// A budget below one node's activation cost per share leaves the fair
	// cluster dark while the global allocator still lights one node.
	fair := testCluster(t, 6, 40, 0)
	fair.FillBudgetFairShare(0, 90) // 15 W/node share < 40 W overhead
	global := testCluster(t, 6, 40, 0)
	global.FillBudget(0, 90)
	if fair.ActiveNodes() >= global.ActiveNodes() && global.ActiveNodes() > 0 {
		t.Errorf("expected consolidation advantage: fair %d vs global %d",
			fair.ActiveNodes(), global.ActiveNodes())
	}
}

func TestPerNodeBreakdown(t *testing.T) {
	tr := atmos.Generate(atmos.AZ, atmos.Apr, atmos.GenConfig{})
	day, err := sim.NewSolarDay(tr, pv.BP3180N(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t, 4, 25, 0)
	res := RunDay(day, c, 2)
	if len(res.PerNode) != 4 {
		t.Fatalf("per-node entries = %d", len(res.PerNode))
	}
	var sumWh, sumGI float64
	for _, n := range res.PerNode {
		sumWh += n.SolarWh
		sumGI += n.GInstrSolar
		if n.ActiveMin > res.DaytimeMin+1e-6 {
			t.Errorf("%s active %v min, more than daytime", n.Name, n.ActiveMin)
		}
	}
	if diff := (sumWh - res.SolarWh) / res.SolarWh; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("per-node energy %.2f does not sum to cluster %.2f", sumWh, res.SolarWh)
	}
	if diff := (sumGI - res.GInstrSolar) / res.GInstrSolar; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("per-node work does not sum: %.1f vs %.1f", sumGI, res.GInstrSolar)
	}
}
