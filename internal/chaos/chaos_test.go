package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/bits"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"solarcore"
	"solarcore/client"
	"solarcore/internal/obs"
	"solarcore/internal/route"
	"solarcore/internal/serve"
	"solarcore/internal/store"
	"solarcore/internal/stream"
)

// backend starts a real serve.Server (real engine, no stubs) behind an
// httptest listener and returns its host:port for proxying.
func backend(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close()
	})
	return s, strings.TrimPrefix(ts.URL, "http://")
}

// proxyFor builds a chaos proxy in front of target with a parsed spec.
func proxyFor(t *testing.T, target, spec string, seed int64) *Proxy {
	t.Helper()
	rules, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	p, err := New(Config{Target: target, Rules: rules, Seed: seed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// freshConnClient builds a typed client that dials one connection per
// request, so request count equals proxy connection ordinal.
func freshConnClient(base string) *client.Client {
	return client.New(base, client.WithHTTPClient(&http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   10 * time.Second,
	}))
}

func chaosSpec(i int) client.RunRequest {
	return client.RunRequest{V: client.WireVersion, RunSpec: solarcore.RunSpec{Day: i, StepMin: 8}}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec(" corrupt:from=0,to=10,p=0.5 ; latency : from=2, to=4, p=1, ms=30, jms=10 ;truncate:from=0,to=9,p=1,bytes=7")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: KindCorrupt, From: 0, To: 10, P: 0.5},
		{Kind: KindLatency, From: 2, To: 4, P: 1, Latency: 30 * time.Millisecond, Jitter: 10 * time.Millisecond},
		{Kind: KindTruncate, From: 0, To: 9, P: 1, Bytes: 7},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	if r, err := ParseSpec("  "); err != nil || r != nil {
		t.Errorf("blank spec = %v, %v; want empty schedule", r, err)
	}
	for _, bad := range []string{
		"reset",                      // no colon
		"reset:from=0",               // empty window (to=0)
		"reset:from=3,to=3,p=1",      // empty window
		"warp:from=0,to=1,p=1",       // unknown kind
		"reset:from=0,to=1,p=2",      // p out of range
		"reset:from=0,to=1,p",        // field with no '='
		"reset:from=zero,to=1,p=1",   // non-numeric int
		"corrupt:from=0,to=1,prob=1", // unknown field
		"latency:from=0,to=1,p=x",    // non-numeric float
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestPlanDeterminism pins the replay contract: the faults a connection
// draws depend only on (seed, ordinal, rule order).
func TestPlanDeterminism(t *testing.T) {
	rules, err := ParseSpec("corrupt:from=0,to=50,p=0.5;partition:from=20,to=30,p=1")
	if err != nil {
		t.Fatal(err)
	}
	a := &Proxy{cfg: Config{Seed: 7, Rules: rules}}
	b := &Proxy{cfg: Config{Seed: 7, Rules: rules}}
	c := &Proxy{cfg: Config{Seed: 8, Rules: rules}}
	var sameAsC int
	corrupted := 0
	for ord := 0; ord < 50; ord++ {
		pa, pb, pc := a.planFor(ord), b.planFor(ord), c.planFor(ord)
		if pa.corrupt != pb.corrupt || pa.partition != pb.partition {
			t.Fatalf("ordinal %d: same seed drew different plans", ord)
		}
		if pa.corrupt == pc.corrupt {
			sameAsC++
		}
		if pa.corrupt {
			corrupted++
		}
		if pa.partition != (ord >= 20 && ord < 30) {
			t.Errorf("ordinal %d: partition = %v outside its window", ord, pa.partition)
		}
	}
	if corrupted == 0 || corrupted == 50 {
		t.Errorf("p=0.5 corrupted %d/50 connections; rng not engaged", corrupted)
	}
	if sameAsC == 50 {
		t.Error("seed 7 and seed 8 drew identical corruption patterns")
	}
}

// TestCorruptWriterFlipsOneBodyBit pins the corruption model: HTTP
// framing passes untouched, the body differs by exactly one bit.
func TestCorruptWriterFlipsOneBodyBit(t *testing.T) {
	head := "HTTP/1.1 200 OK\r\nContent-Length: 32\r\n\r\n"
	body := `{"label":"abcdefghijklmnopqr"}ab`
	p := &Proxy{cfg: Config{Seed: 3}}
	var out bytes.Buffer
	cw := &corruptWriter{w: &out, rng: p.planFor(0).rng}
	// Write in awkward chunks so the \r\n\r\n scan crosses boundaries.
	whole := head + body
	for i := 0; i < len(whole); i += 7 {
		end := i + 7
		if end > len(whole) {
			end = len(whole)
		}
		if _, err := cw.Write([]byte(whole[i:end])); err != nil {
			t.Fatal(err)
		}
	}
	got := out.String()
	if len(got) != len(whole) {
		t.Fatalf("length changed: %d -> %d", len(whole), len(got))
	}
	if got[:len(head)] != head {
		t.Fatalf("headers modified:\n%q\nvs\n%q", got[:len(head)], head)
	}
	flipped := 0
	for i := range body {
		flipped += bits.OnesCount8(got[len(head)+i] ^ body[i])
	}
	if flipped != 1 {
		t.Errorf("%d body bits flipped, want exactly 1", flipped)
	}
}

// TestFaithfulRelay pins the no-rules baseline: the proxy must be
// invisible — byte-identical bodies, checksums verifying.
func TestFaithfulRelay(t *testing.T) {
	_, addr := backend(t, serve.Config{})
	p := proxyFor(t, addr, "", 1)
	ctx := context.Background()

	direct, err := client.New("http://"+addr).Run(ctx, chaosSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	proxied, err := freshConnClient(p.URL()).Run(ctx, chaosSpec(1))
	if err != nil {
		t.Fatalf("proxied run: %v", err)
	}
	if !bytes.Equal(direct.Body, proxied.Body) {
		t.Error("relay is not byte-faithful")
	}
}

// TestNeverSilentCorruption is the tentpole invariant: under a schedule
// mixing corruption, truncation and resets, every request either
// returns the byte-identical correct body or fails with an error —
// and bit-flipped 200s specifically surface as *client.IntegrityError
// (temporary, so a router fails over). A silent wrong-byte success is
// the one outcome that must never happen.
func TestNeverSilentCorruption(t *testing.T) {
	_, addr := backend(t, serve.Config{})
	ctx := context.Background()
	truth, err := client.New("http://"+addr).Run(ctx, chaosSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	p := proxyFor(t, addr,
		"corrupt:from=0,to=1000,p=0.6;truncate:from=0,to=1000,p=0.2,bytes=40;reset:from=0,to=1000,p=0.2", 11)
	cli := freshConnClient(p.URL())

	var clean, integrity, transport int
	for i := 0; i < 40; i++ {
		res, err := cli.Run(ctx, chaosSpec(2))
		switch {
		case err == nil:
			if !bytes.Equal(res.Body, truth.Body) {
				t.Fatalf("request %d: SILENT CORRUPTION — 200 with wrong bytes", i)
			}
			clean++
		default:
			var ie *client.IntegrityError
			if errors.As(err, &ie) {
				if !ie.Temporary() {
					t.Errorf("request %d: IntegrityError not temporary; routers would not fail over", i)
				}
				integrity++
			} else {
				transport++
			}
		}
	}
	t.Logf("outcomes over 40 requests: %d clean, %d integrity, %d transport", clean, integrity, transport)
	if clean == 0 {
		t.Error("no clean request survived; schedule leaves no baseline to compare")
	}
	if integrity == 0 {
		t.Error("no corruption was caught by the checksum; the integrity path is untested")
	}
	if transport == 0 {
		t.Error("no truncation/reset surfaced as a transport error")
	}
}

// TestPartitionHedgingBoundsTailLatency pins the fleet's answer to a
// black-hole partition: with one of two nodes swallowing every packet,
// requests still succeed — the hedge timer detects the silence and the
// healthy owner answers — and the worst-case latency stays near the
// hedge delay, nowhere near a timeout.
func TestPartitionHedgingBoundsTailLatency(t *testing.T) {
	_, addrA := backend(t, serve.Config{})
	_, addrB := backend(t, serve.Config{})
	p := proxyFor(t, addrA, "partition:from=0,to=1000000,p=1", 5)

	rt, err := route.New(route.Config{
		Backends:      []string{p.URL(), "http://" + addrB},
		Clock:         time.Now,
		HedgeDelay:    50 * time.Millisecond,
		BackoffBase:   time.Millisecond,
		ProbeInterval: time.Minute, // keep the prober out of this test
		ProbeJitter:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	gate := httptest.NewServer(rt.Handler())
	t.Cleanup(gate.Close)
	cli := client.New(gate.URL)
	ctx := context.Background()

	hedged := 0
	var worst time.Duration
	for i := 0; i < 12; i++ {
		start := time.Now()
		res, err := cli.Run(ctx, chaosSpec(100+i))
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("request %d failed under single-node partition: %v", i, err)
		}
		if elapsed > worst {
			worst = elapsed
		}
		if res.Route == client.RouteHedged {
			hedged++
		}
	}
	if hedged == 0 {
		t.Error("no request was hedged; the partitioned node never owned a key — widen the spec range")
	}
	// Bound the tail: a hedged request costs ~HedgeDelay + one fast run.
	// 5s is an order of magnitude of slack on a loaded CI box while still
	// proving nobody waited for a TCP timeout.
	if worst > 5*time.Second {
		t.Errorf("worst latency %v; hedging is not bounding the tail", worst)
	}
	t.Logf("12 requests, %d hedged, worst latency %v", hedged, worst)
}

// TestCrashRestartServesDurablyThroughChaos is the kill-and-restart
// story end to end over HTTP: generation 1 computes and persists, the
// process "dies" mid-write (no drain, no store.Close, a torn temp file
// and a torn record on disk), and generation 2 — reached through a
// fresh chaos proxy — serves the same bytes as a durable cache hit
// without re-simulating, while the torn record is quarantined.
func TestCrashRestartServesDurablyThroughChaos(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st1, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, addr1 := backend(t, serve.Config{Store: st1})
	p1 := proxyFor(t, addr1, "", 1)
	body1, err := freshConnClient(p1.URL()).Run(ctx, chaosSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if body1.Cache != obs.CacheMiss {
		t.Fatalf("gen1 disposition = %q, want %q", body1.Cache, obs.CacheMiss)
	}
	// The crash: no drain, no Close. The kill lands mid-write for two
	// other keys — a temp file that never got renamed and a record whose
	// tail was cut.
	if err := os.WriteFile(filepath.Join(dir, "halfway.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tornkey.rec"), []byte("SCR1\x00\x01"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	st2, err := store.Open(store.Config{Dir: dir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	serveReg := obs.NewRegistry()
	_, addr2 := backend(t, serve.Config{Store: st2, Registry: serveReg})
	p2 := proxyFor(t, addr2, "", 2)
	body2, err := freshConnClient(p2.URL()).Run(ctx, chaosSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if body2.Cache != obs.CacheHit {
		t.Errorf("post-restart disposition = %q, want %q", body2.Cache, obs.CacheHit)
	}
	if !bytes.Equal(body1.Body, body2.Body) {
		t.Error("post-restart body is not byte-identical")
	}
	snap := reg.Snapshot()
	if got := snap.Counters[store.MetricQuarantined]; got != 1 {
		t.Errorf("%s = %v, want 1 (the torn record)", store.MetricQuarantined, got)
	}
	if got := serveReg.Snapshot().Counters[serve.MetricRuns]; got != 0 {
		t.Errorf("gen2 re-simulated %v times; durable hit should cost zero runs", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "halfway.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Error("stray temp file survived the boot scan")
	}
}

// collectStream drains one whole /v1/stream watch and returns every
// identified event in order (heartbeats and any unidentified frames are
// not part of the sequence contract).
func collectStream(ctx context.Context, t *testing.T, cli *client.Client, req client.RunRequest) []client.StreamEvent {
	t.Helper()
	st, err := cli.Stream(ctx, client.StreamRequest{RunRequest: req})
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	defer func() { _ = st.Close() }()
	var got []client.StreamEvent
	for {
		ev, err := st.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return got
			}
			t.Fatalf("stream after %d events: %v", len(got), err)
		}
		if ev.ID > 0 {
			got = append(got, ev)
		}
	}
}

// TestMidStreamPartitionResumesGapless pins the live-streaming failure
// story (DESIGN.md §17): a watcher attached through solargate keeps its
// event sequence intact when the wire to the backend is severed mid-
// stream. The proxy truncates exactly the first connection after a few
// frames; the gate must reconnect with Last-Event-ID pinned to the last
// relayed event, and the watcher must observe the identical sequence a
// fault-free direct watch produces — every id consecutive, every payload
// byte-equal, nothing silently missing.
func TestMidStreamPartitionResumesGapless(t *testing.T) {
	hub := stream.NewHub(stream.Config{})
	_, addr := backend(t, serve.Config{Stream: hub})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := chaosSpec(6)

	// Ground truth: the full sequence over a clean wire.
	truth := collectStream(ctx, t, client.New("http://"+addr), req)
	if len(truth) < 10 {
		t.Fatalf("truth watch produced only %d events; spec too small to cut mid-stream", len(truth))
	}
	if truth[len(truth)-1].Type != obs.TypeRunEnd {
		t.Fatalf("truth watch ended on %q, want %q", truth[len(truth)-1].Type, obs.TypeRunEnd)
	}

	// The partition: the first proxied connection is cut after 2000
	// response bytes — HTTP headers plus a handful of SSE frames — and
	// every later connection relays faithfully.
	p := proxyFor(t, addr, "truncate:from=0,to=1,p=1,bytes=2000", 13)
	rt, err := route.New(route.Config{
		Backends:      []string{p.URL()},
		Clock:         time.Now,
		BackoffBase:   time.Millisecond,
		ProbeInterval: time.Minute, // keep the prober out of this test
		ProbeJitter:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	gate := httptest.NewServer(rt.Handler())
	t.Cleanup(gate.Close)

	got := collectStream(ctx, t, client.New(gate.URL), req)
	if len(got) != len(truth) {
		t.Fatalf("watched %d events through the partition, want %d", len(got), len(truth))
	}
	for i := range truth {
		if got[i].ID != uint64(i+1) {
			t.Fatalf("event %d has id %d, want %d (sequence not consecutive across the reconnect)", i, got[i].ID, i+1)
		}
		if !bytes.Equal(got[i].Data, truth[i].Data) {
			t.Fatalf("event id %d diverges from the clean watch:\n  got  %s\n  want %s", got[i].ID, got[i].Data, truth[i].Data)
		}
	}
	if n := rt.Metrics().Counters[route.MetricStreamReconnects]; n < 1 {
		t.Errorf("%s = %v, want >= 1 (the cut must have forced a resume)", route.MetricStreamReconnects, n)
	}
	if p.Ordinals() < 2 {
		t.Errorf("proxy saw %d connections, want >= 2 (cut + reconnect)", p.Ordinals())
	}
}

// TestLatencyRuleDelaysButDeliversIntact pins KindLatency: the bytes
// arrive late but arrive right.
func TestLatencyRuleDelaysButDeliversIntact(t *testing.T) {
	_, addr := backend(t, serve.Config{})
	ctx := context.Background()
	truth, err := client.New("http://"+addr).Run(ctx, chaosSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	p := proxyFor(t, addr, "latency:from=0,to=100,p=1,ms=80,jms=40", 9)
	start := time.Now()
	res, err := freshConnClient(p.URL()).Run(ctx, chaosSpec(4))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Body, truth.Body) {
		t.Error("delayed response is not byte-identical")
	}
	if elapsed < 80*time.Millisecond {
		t.Errorf("elapsed %v < the 80ms latency floor; rule did not fire", elapsed)
	}
}

// TestCloseSeversLiveConnections pins the lifecycle: Close unblocks
// even with a black-holed connection still held open.
func TestCloseSeversLiveConnections(t *testing.T) {
	_, addr := backend(t, serve.Config{})
	p := proxyFor(t, addr, "partition:from=0,to=10,p=1", 1)
	cli := client.New(p.URL(), client.WithHTTPClient(&http.Client{
		Timeout: 200 * time.Millisecond,
	}))
	if _, err := cli.Run(context.Background(), chaosSpec(5)); err == nil {
		t.Fatal("request through a black hole succeeded")
	}
	done := make(chan struct{})
	go func() {
		_ = p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on a held connection")
	}
	if p.Ordinals() == 0 {
		t.Error("no connection was ever accepted")
	}
}
