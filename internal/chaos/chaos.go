// Package chaos is the serving fleet's adversarial-conditions layer: a
// stdlib-only TCP proxy that injects deterministic, schedule-driven
// network faults between a client and one backend. internal/fault plays
// this role for the physics (clouds, sensor dropouts, converter
// faults); chaos plays it for the wire (DESIGN.md §16) — connection
// resets, added latency, response truncation, in-flight byte corruption
// and full partitions — so the robustness claims of serve, route,
// store and client are tested against the failures they exist for,
// not just against healthy sockets.
//
// The design mirrors fault deliberately:
//
//   - a Rule is active over a half-open window — here measured in
//     accepted-connection ordinals rather than simulation minutes —
//     with a probability knob P where zero is exactly a no-op;
//   - all randomness is seeded: each connection derives its generator
//     from (Config.Seed, ordinal) via splitmix64, so a chaos run
//     replays identically regardless of goroutine interleaving;
//   - a compact spec grammar (ParseSpec) mirrors fault.ParseSpec, e.g.
//     "corrupt:from=0,to=100,p=0.5;partition:from=100,to=200,p=1".
//
// The proxy never parses HTTP beyond locating the header/body boundary
// (so corruption can target bodies, the case checksums must catch);
// everything else is byte-level, which keeps the fault model honest.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Rule kinds.
const (
	// KindReset forwards roughly half of the response, then destroys the
	// client connection with an RST — the classic mid-body reset.
	KindReset = "reset"
	// KindLatency delays the response relay by Latency plus a uniform
	// jitter in [0, Jitter].
	KindLatency = "latency"
	// KindTruncate relays only Bytes response bytes, then closes cleanly
	// — the Content-Length mismatch surfaces client-side as an
	// unexpected EOF.
	KindTruncate = "truncate"
	// KindCorrupt flips one random bit in the response body (past the
	// first blank line, so HTTP framing survives and only checksums can
	// catch it).
	KindCorrupt = "corrupt"
	// KindPartition black-holes matching connections — accepted, bytes
	// swallowed, nothing ever answered — the shape of a network
	// partition, where packets vanish rather than bounce. This is the
	// fault hedging exists for: only a timer can detect it.
	KindPartition = "partition"
)

// Kinds lists the rule kinds ParseSpec accepts.
func Kinds() []string {
	return []string{KindReset, KindLatency, KindTruncate, KindCorrupt, KindPartition}
}

// Rule is one scheduled wire disturbance, active for connections whose
// accept ordinal falls in [From, To) and that win the P coin flip.
type Rule struct {
	// Kind is one of the Kind* constants.
	Kind string
	// From / To bound the half-open activity window in accepted-
	// connection ordinals (0-based).
	From, To int
	// P is the per-connection injection probability in [0,1]; zero is
	// exactly a no-op, mirroring fault's Intensity convention.
	P float64
	// Latency / Jitter shape KindLatency (fixed floor + uniform extra).
	Latency, Jitter time.Duration
	// Bytes is KindTruncate's relay budget (default 64).
	Bytes int
}

// contains reports whether the rule's window covers ordinal.
func (r Rule) contains(ordinal int) bool { return ordinal >= r.From && ordinal < r.To }

// validate checks one rule the way fault validates schedule entries.
func (r Rule) validate() error {
	known := false
	for _, k := range Kinds() {
		if r.Kind == k {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("chaos: unknown kind %q (known: %s)", r.Kind, strings.Join(Kinds(), ", "))
	}
	if r.To <= r.From {
		return fmt.Errorf("chaos: %s window [%d,%d) is empty", r.Kind, r.From, r.To)
	}
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("chaos: %s probability %v outside [0,1]", r.Kind, r.P)
	}
	return nil
}

// Config tunes a Proxy. Target is required.
type Config struct {
	// Target is the backend address (host:port) faulted traffic is
	// relayed to.
	Target string
	// Rules is the fault schedule; an empty schedule relays faithfully.
	Rules []Rule
	// Seed feeds the per-connection randomness (default 1).
	Seed int64
}

// Proxy is one listening fault injector. Build with New, point clients
// at Addr, Close when done.
type Proxy struct {
	cfg Config
	ln  net.Listener

	ordinal atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New validates cfg, binds a loopback listener and starts accepting.
func New(cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("chaos: Config.Target is required")
	}
	for _, r := range cfg.Rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{cfg: cfg, ln: ln, conns: map[net.Conn]struct{}{}, done: make(chan struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's dialable address (127.0.0.1:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Ordinals reports how many connections have been accepted so far.
func (p *Proxy) Ordinals() int { return int(p.ordinal.Load()) }

// Close stops accepting, severs every live connection and waits for the
// relay goroutines to drain.
func (p *Proxy) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		_ = p.ln.Close()
		// Snapshot under the lock, sever outside it: Close on a TCP conn
		// can block and must not run inside the critical section.
		p.mu.Lock()
		conns := make([]net.Conn, 0, len(p.conns))
		for c := range p.conns {
			conns = append(conns, c)
		}
		p.mu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
	})
	p.wg.Wait()
	return nil
}

// track registers a live connection for Close-time severing; the
// returned func unregisters it.
func (p *Proxy) track(c net.Conn) func() {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}
}

// acceptLoop owns the listener; it exits when Close closes it.
func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
			}
			// Transient accept failure: there is no backoff worth having on
			// a loopback test proxy, and a dead listener errors every call,
			// so bail out either way.
			return
		}
		ord := int(p.ordinal.Add(1)) - 1
		p.wg.Add(1)
		go p.handle(conn, ord)
	}
}

// splitmix64 is the same seed scrambler fault uses: full-avalanche, so
// consecutive ordinals draw unrelated streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// plan is the faults drawn for one connection.
type plan struct {
	partition bool
	reset     bool
	latency   time.Duration
	truncate  int // 0: no truncation
	corrupt   bool
	rng       *rand.Rand
}

// planFor draws the connection's fault plan. Rules are consulted in
// declaration order against one deterministic per-connection stream.
func (p *Proxy) planFor(ordinal int) plan {
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(p.cfg.Seed) ^ uint64(ordinal)))))
	pl := plan{rng: rng}
	for _, r := range p.cfg.Rules {
		// Draw unconditionally so the stream position — and therefore the
		// whole replay — depends only on (seed, ordinal, rule order).
		hit := rng.Float64() < r.P
		if !r.contains(ordinal) || !hit {
			continue
		}
		switch r.Kind {
		case KindPartition:
			pl.partition = true
		case KindReset:
			pl.reset = true
		case KindLatency:
			d := r.Latency
			if r.Jitter > 0 {
				d += time.Duration(rng.Int63n(int64(r.Jitter) + 1))
			}
			pl.latency += d
		case KindTruncate:
			b := r.Bytes
			if b <= 0 {
				b = 64
			}
			pl.truncate = b
		case KindCorrupt:
			pl.corrupt = true
		}
	}
	return pl
}

// handle relays one client connection through its fault plan.
func (p *Proxy) handle(client net.Conn, ordinal int) {
	defer p.wg.Done()
	untrack := p.track(client)
	defer untrack()
	defer func() { _ = client.Close() }()

	pl := p.planFor(ordinal)
	if pl.partition {
		// Black hole: swallow whatever the client sends and answer
		// nothing. Copy returns when the client gives up (hedge winner
		// canceling the request closes its conn) or Close severs us.
		_, _ = io.Copy(io.Discard, client)
		return
	}
	server, err := net.Dial("tcp", p.cfg.Target)
	if err != nil {
		abort(client)
		return
	}
	untrackS := p.track(server)
	defer untrackS()
	defer func() { _ = server.Close() }()

	// Request path relays untouched; its end half-closes the server side
	// so the backend sees EOF exactly when the client stops sending.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_, _ = io.Copy(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()

	if pl.latency > 0 && !p.sleep(pl.latency) {
		return
	}
	var dst io.Writer = client
	if pl.corrupt {
		dst = &corruptWriter{w: dst, rng: pl.rng}
	}
	switch {
	case pl.reset:
		// Relay a prefix, then RST mid-body.
		_, _ = io.CopyN(dst, server, 512)
		abort(client)
	case pl.truncate > 0:
		_, _ = io.CopyN(dst, server, int64(pl.truncate))
	default:
		_, _ = io.Copy(dst, server)
	}
}

// sleep waits d or until the proxy closes; it reports whether the full
// delay elapsed.
func (p *Proxy) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.done:
		return false
	}
}

// abort destroys a TCP connection with an RST instead of a FIN, the
// shape of a crashed peer.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// corruptWriter flips exactly one bit of the response body: it passes
// the HTTP header section through untouched (so the status line and
// framing survive) and flips a random bit in the first body chunk it
// sees. One flipped bit is the minimal corruption — anything that
// catches it catches worse.
type corruptWriter struct {
	w       io.Writer
	rng     *rand.Rand
	inBody  bool
	flipped bool
	tail    [3]byte // last bytes seen, for a boundary-spanning \r\n\r\n
	tailN   int
}

func (cw *corruptWriter) Write(b []byte) (int, error) {
	if cw.flipped {
		return cw.w.Write(b)
	}
	if !cw.inBody {
		// Find the header terminator across chunk boundaries.
		joined := append(append([]byte{}, cw.tail[:cw.tailN]...), b...)
		if i := strings.Index(string(joined), "\r\n\r\n"); i >= 0 {
			cw.inBody = true
			bodyStart := i + 4 - cw.tailN // index into b
			if bodyStart < 0 {
				bodyStart = 0
			}
			if bodyStart < len(b) {
				return cw.flipAndWrite(b, bodyStart)
			}
			return cw.w.Write(b)
		}
		keep := len(joined)
		if keep > 3 {
			keep = 3
		}
		copy(cw.tail[:], joined[len(joined)-keep:])
		cw.tailN = keep
		return cw.w.Write(b)
	}
	if len(b) > 0 {
		return cw.flipAndWrite(b, 0)
	}
	return cw.w.Write(b)
}

// flipAndWrite writes b with one bit flipped at or after offset.
func (cw *corruptWriter) flipAndWrite(b []byte, offset int) (int, error) {
	out := append([]byte(nil), b...)
	idx := offset + cw.rng.Intn(len(b)-offset)
	out[idx] ^= 1 << uint(cw.rng.Intn(8))
	cw.flipped = true
	n, err := cw.w.Write(out)
	if n > len(b) {
		n = len(b)
	}
	return n, err
}

// ParseSpec parses the compact chaos-schedule grammar, mirroring
// fault.ParseSpec:
//
//	spec  := entry (';' entry)*
//	entry := kind ':' field (',' field)*
//	field := ('from'|'to'|'p'|'ms'|'jms'|'bytes') '=' number
//
// e.g. "corrupt:from=0,to=100,p=0.5;partition:from=100,to=200,p=1".
// ms/jms are KindLatency's floor and jitter in milliseconds, bytes is
// KindTruncate's budget. Whitespace around tokens is ignored; an empty
// spec is an empty schedule. Errors name the offending token.
func ParseSpec(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, fields, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("chaos: entry %q has no ':' (want kind:field,...)", entry)
		}
		r := Rule{Kind: strings.TrimSpace(kind)}
		for _, f := range strings.Split(fields, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("chaos: field %q has no '=' in entry %q", f, entry)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			switch key {
			case "p":
				x, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("chaos: bad p=%q in %q", val, entry)
				}
				r.P = x
			case "from", "to", "ms", "jms", "bytes":
				x, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("chaos: bad %s=%q in %q", key, val, entry)
				}
				switch key {
				case "from":
					r.From = x
				case "to":
					r.To = x
				case "ms":
					r.Latency = time.Duration(x) * time.Millisecond
				case "jms":
					r.Jitter = time.Duration(x) * time.Millisecond
				case "bytes":
					r.Bytes = x
				}
			default:
				return nil, fmt.Errorf("chaos: unknown field %q in %q", key, entry)
			}
		}
		if err := r.validate(); err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}
