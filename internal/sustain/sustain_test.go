package sustain

import (
	"math"
	"strings"
	"testing"

	"solarcore/internal/atmos"
	"solarcore/internal/pv"
	"solarcore/internal/sched"
	"solarcore/internal/sim"
	"solarcore/internal/workload"
)

func TestProfileFor(t *testing.T) {
	for _, code := range []string{"AZ", "CO", "NC", "TN"} {
		p := ProfileFor(code)
		if p.CarbonGPerKWh <= 0 || p.PricePerKWh <= 0 {
			t.Errorf("%s: degenerate profile %+v", code, p)
		}
	}
	if ProfileFor("XX").Name != "US average" {
		t.Error("unknown site should get the US average")
	}
	// Coal-heavy Colorado should be the dirtiest of the four grids.
	for _, code := range []string{"AZ", "NC", "TN"} {
		if ProfileFor(code).CarbonGPerKWh >= ProfileFor("CO").CarbonGPerKWh {
			t.Errorf("%s dirtier than CO?", code)
		}
	}
}

func TestAssessArithmetic(t *testing.T) {
	res := &sim.DayResult{SolarWh: 800, UtilityWh: 200}
	gp := GridProfile{CarbonGPerKWh: 500, PricePerKWh: 0.10}
	im := Assess(res, gp)
	if math.Abs(im.CarbonSavedKg-0.4) > 1e-9 {
		t.Errorf("saved = %v kg, want 0.4", im.CarbonSavedKg)
	}
	if math.Abs(im.CarbonEmittedKg-0.1) > 1e-9 {
		t.Errorf("emitted = %v kg, want 0.1", im.CarbonEmittedKg)
	}
	if math.Abs(im.CarbonReduction()-0.8) > 1e-9 {
		t.Errorf("reduction = %v, want 0.8", im.CarbonReduction())
	}
	if math.Abs(im.CostSaved-0.08) > 1e-9 {
		t.Errorf("cost saved = %v, want 0.08", im.CostSaved)
	}
	if !strings.Contains(im.String(), "carbon reduction") {
		t.Error("string missing summary")
	}
	if (Impact{}).CarbonReduction() != 0 {
		t.Error("empty impact should reduce nothing")
	}
}

func TestSum(t *testing.T) {
	a := Impact{SolarKWh: 1, UtilityKWh: 2, CarbonSavedKg: 3, CarbonEmittedKg: 4, CostSaved: 5}
	got := Sum(a, a, a)
	if got.SolarKWh != 3 || got.CostSaved != 15 || got.CarbonEmittedKg != 12 {
		t.Errorf("sum = %+v", got)
	}
}

func TestEndToEndCarbonReduction(t *testing.T) {
	// A clear Phoenix July day under SolarCore eliminates the vast
	// majority of the chip's utility footprint — the paper's motivating
	// claim, measured.
	tr := atmos.Generate(atmos.AZ, atmos.Jul, atmos.GenConfig{})
	day, err := sim.NewSolarDay(tr, pv.BP3180N(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mix, _ := workload.MixByName("M2")
	res, err := sim.RunMPPT(sim.Config{Day: day, Mix: mix, StepMin: 2}, sched.OptTPR{})
	if err != nil {
		t.Fatal(err)
	}
	im := Assess(res, ProfileFor("AZ"))
	if im.CarbonReduction() < 0.8 {
		t.Errorf("carbon reduction %.2f on a clear AZ day, want ≥ 0.8", im.CarbonReduction())
	}
	if im.CarbonSavedKg <= 0 || im.CostSaved <= 0 {
		t.Errorf("no savings recorded: %+v", im)
	}
}
