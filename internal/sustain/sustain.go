// Package sustain turns simulation energy ledgers into the quantities the
// paper's introduction argues about: fossil carbon displaced and utility
// cost avoided by running compute on harvested solar energy. "This paper
// makes the first step on maximally reducing the carbon footprint of
// computing systems" — this package is where that footprint is computed.
package sustain

import (
	"fmt"

	"solarcore/internal/sim"
)

// GridProfile characterizes the utility feeding a site: average carbon
// intensity and retail price. Values are circa-2009 regional figures to
// match the paper's evaluation year.
type GridProfile struct {
	Name          string
	CarbonGPerKWh float64 // grid average emissions, g CO₂ / kWh
	PricePerKWh   float64 // retail electricity price, $ / kWh
}

// profiles maps the Table 2 sites to their regional grids.
var profiles = map[string]GridProfile{
	"AZ": {Name: "Arizona (WECC Southwest)", CarbonGPerKWh: 560, PricePerKWh: 0.098},
	"CO": {Name: "Colorado (WECC Rockies)", CarbonGPerKWh: 780, PricePerKWh: 0.094},
	"NC": {Name: "North Carolina (SERC East)", CarbonGPerKWh: 550, PricePerKWh: 0.089},
	"TN": {Name: "Tennessee (TVA)", CarbonGPerKWh: 520, PricePerKWh: 0.083},
}

// ProfileFor returns the grid profile for a Table 2 site code; unknown
// codes get the US average.
func ProfileFor(siteCode string) GridProfile {
	if p, ok := profiles[siteCode]; ok {
		return p
	}
	return GridProfile{Name: "US average", CarbonGPerKWh: 590, PricePerKWh: 0.095}
}

// Impact is the sustainability ledger of one simulated day.
type Impact struct {
	SolarKWh   float64
	UtilityKWh float64
	// CarbonEmittedKg is the footprint of the utility draw; CarbonSavedKg
	// is what the solar-supplied energy would have emitted on the grid.
	CarbonEmittedKg float64
	CarbonSavedKg   float64
	// CostSaved is the utility bill avoided by the solar share.
	CostSaved float64
}

// CarbonReduction returns the fraction of the chip's footprint eliminated
// relative to running entirely on the utility.
func (im Impact) CarbonReduction() float64 {
	total := im.CarbonEmittedKg + im.CarbonSavedKg
	if total == 0 {
		return 0
	}
	return im.CarbonSavedKg / total
}

// String summarizes the ledger.
func (im Impact) String() string {
	return fmt.Sprintf("solar %.2f kWh, utility %.2f kWh → %.0f%% carbon reduction (%.2f kg saved, $%.2f avoided)",
		im.SolarKWh, im.UtilityKWh, im.CarbonReduction()*100, im.CarbonSavedKg, im.CostSaved)
}

// Assess computes the ledger of a day result against a grid profile.
func Assess(res *sim.DayResult, gp GridProfile) Impact {
	solar := res.SolarWh / 1000
	utility := res.UtilityWh / 1000
	return Impact{
		SolarKWh:        solar,
		UtilityKWh:      utility,
		CarbonEmittedKg: utility * gp.CarbonGPerKWh / 1000,
		CarbonSavedKg:   solar * gp.CarbonGPerKWh / 1000,
		CostSaved:       solar * gp.PricePerKWh,
	}
}

// Sum accumulates impacts (e.g. across a multi-day deployment).
func Sum(impacts ...Impact) Impact {
	var out Impact
	for _, im := range impacts {
		out.SolarKWh += im.SolarKWh
		out.UtilityKWh += im.UtilityKWh
		out.CarbonEmittedKg += im.CarbonEmittedKg
		out.CarbonSavedKg += im.CarbonSavedKg
		out.CostSaved += im.CostSaved
	}
	return out
}
