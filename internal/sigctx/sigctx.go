// Package sigctx is the one place the CLIs wire POSIX shutdown signals
// into a context. cmd/solard (graceful HTTP drain) and cmd/solarfleet
// (worker-pool cancellation with partial-result flush) share it so both
// react to SIGINT and SIGTERM identically: first signal cancels the
// context cooperatively, second signal kills the process via Go's
// default disposition (signal.Reset inside stop).
package sigctx

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// WithShutdown returns a copy of parent canceled on SIGINT or SIGTERM.
// Call stop to release the signal registration; after stop (or after the
// first signal) a subsequent signal takes the process down immediately.
func WithShutdown(parent context.Context) (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
