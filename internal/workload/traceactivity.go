package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"solarcore/internal/mathx"
	"solarcore/internal/mcore"
)

// TraceActivity replays a recorded per-interval (IPC, Ceff) profile —
// e.g. exported from hardware performance counters or a cycle-accurate
// simulator run — in place of the synthetic phase model. The profile
// repeats cyclically, matching how the paper runs each benchmark's
// representative execution interval in a loop.
type TraceActivity struct {
	// StepMin is the profile sampling interval in minutes.
	StepMin float64
	IPC     []float64
	CeffNF  []float64
}

var _ mcore.Activity = (*TraceActivity)(nil)

// NewTraceActivity validates and wraps a profile.
func NewTraceActivity(stepMin float64, ipc, ceffNF []float64) (*TraceActivity, error) {
	if stepMin <= 0 {
		return nil, fmt.Errorf("workload: trace step must be positive")
	}
	if len(ipc) == 0 || len(ipc) != len(ceffNF) {
		return nil, fmt.Errorf("workload: trace needs equal non-empty IPC and Ceff columns")
	}
	for i := range ipc {
		if ipc[i] <= 0 || ceffNF[i] <= 0 {
			return nil, fmt.Errorf("workload: trace sample %d not positive", i)
		}
	}
	return &TraceActivity{StepMin: stepMin, IPC: ipc, CeffNF: ceffNF}, nil
}

// Demand interpolates the profile cyclically at the given minute.
func (a *TraceActivity) Demand(minute float64) (ipc, ceffNF float64) {
	n := len(a.IPC)
	if n == 1 {
		return a.IPC[0], a.CeffNF[0]
	}
	pos := minute / a.StepMin
	for pos < 0 {
		pos += float64(n)
	}
	i := int(pos) % n
	j := (i + 1) % n
	frac := pos - float64(int(pos))
	return mathx.Lerp(a.IPC[i], a.IPC[j], frac), mathx.Lerp(a.CeffNF[i], a.CeffNF[j], frac)
}

// ReadActivityCSV parses a profile in the layout
//
//	minute,ipc,ceff_nf
//	0,0.8,3.1
//	1,0.9,3.3
//
// with uniformly spaced minutes and an optional header row.
func ReadActivityCSV(r io.Reader) (*TraceActivity, error) {
	recs, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading activity CSV: %w", err)
	}
	if len(recs) > 0 && recs[0][0] == "minute" {
		recs = recs[1:]
	}
	var minutes, ipc, ceff []float64
	for i, rec := range recs {
		if len(rec) != 3 {
			return nil, fmt.Errorf("workload: activity row %d: want 3 columns", i+1)
		}
		m, err1 := strconv.ParseFloat(rec[0], 64)
		p, err2 := strconv.ParseFloat(rec[1], 64)
		c, err3 := strconv.ParseFloat(rec[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("workload: activity row %d: non-numeric field", i+1)
		}
		minutes = append(minutes, m)
		ipc = append(ipc, p)
		ceff = append(ceff, c)
	}
	if len(minutes) < 1 {
		return nil, fmt.Errorf("workload: empty activity trace")
	}
	step := 1.0
	if len(minutes) >= 2 {
		step = minutes[1] - minutes[0]
		for i := 1; i < len(minutes); i++ {
			if gap := minutes[i] - minutes[i-1]; gap <= 0 || absf(gap-step) > 1e-6 {
				return nil, fmt.Errorf("workload: activity trace not uniformly spaced at row %d", i+1)
			}
		}
	}
	return NewTraceActivity(step, ipc, ceff)
}

// WriteActivityCSV emits the profile in the layout ReadActivityCSV
// accepts, so profiles can be generated, edited and replayed through
// external tooling.
func (a *TraceActivity) WriteActivityCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"minute", "ipc", "ceff_nf"}); err != nil {
		return err
	}
	for i := range a.IPC {
		rec := []string{
			strconv.FormatFloat(float64(i)*a.StepMin, 'f', 4, 64),
			strconv.FormatFloat(a.IPC[i], 'f', 6, 64),
			strconv.FormatFloat(a.CeffNF[i], 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
