package workload

import (
	"math"
	"strings"
	"testing"
)

func TestNewTraceActivityValidation(t *testing.T) {
	if _, err := NewTraceActivity(0, []float64{1}, []float64{1}); err == nil {
		t.Error("zero step should error")
	}
	if _, err := NewTraceActivity(1, nil, nil); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := NewTraceActivity(1, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewTraceActivity(1, []float64{1, -1}, []float64{1, 1}); err == nil {
		t.Error("non-positive sample should error")
	}
}

func TestTraceActivityInterpolatesAndWraps(t *testing.T) {
	a, err := NewTraceActivity(10, []float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	ipc, ceff := a.Demand(0)
	if ipc != 1 || ceff != 2 {
		t.Errorf("Demand(0) = %v, %v", ipc, ceff)
	}
	ipc, _ = a.Demand(5) // halfway between samples 0 and 1
	if math.Abs(ipc-1.5) > 1e-9 {
		t.Errorf("Demand(5) ipc = %v, want 1.5", ipc)
	}
	// Wraps: minute 25 is halfway between samples 2 and 0.
	ipc, _ = a.Demand(25)
	if math.Abs(ipc-2) > 1e-9 {
		t.Errorf("Demand(25) ipc = %v, want 2 (wrap)", ipc)
	}
	// Cyclic: one full period later, same value.
	a1, _ := a.Demand(7)
	a2, _ := a.Demand(7 + 30)
	if math.Abs(a1-a2) > 1e-9 {
		t.Errorf("not periodic: %v vs %v", a1, a2)
	}
}

func TestTraceActivitySingleSample(t *testing.T) {
	a, err := NewTraceActivity(1, []float64{0.7}, []float64{3.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []float64{0, 5, 123.4} {
		ipc, ceff := a.Demand(m)
		if ipc != 0.7 || ceff != 3.0 {
			t.Fatalf("Demand(%v) = %v, %v", m, ipc, ceff)
		}
	}
}

func TestReadActivityCSV(t *testing.T) {
	data := "minute,ipc,ceff_nf\n0,0.8,3.1\n1,0.9,3.3\n2,1.0,3.0\n"
	a, err := ReadActivityCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if a.StepMin != 1 || len(a.IPC) != 3 {
		t.Errorf("parsed %+v", a)
	}
	ipc, ceff := a.Demand(1)
	if ipc != 0.9 || ceff != 3.3 {
		t.Errorf("Demand(1) = %v, %v", ipc, ceff)
	}
}

func TestReadActivityCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"minute,ipc,ceff_nf\n",
		"minute,ipc,ceff_nf\n0,0.8\n",
		"minute,ipc,ceff_nf\n0,x,3\n",
		"minute,ipc,ceff_nf\n0,1,3\n5,1,3\n7,1,3\n",
		"minute,ipc,ceff_nf\n0,1,3\n1,0,3\n",
	}
	for i, c := range cases {
		if _, err := ReadActivityCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestActivityCSVRoundTrip(t *testing.T) {
	orig, err := NewTraceActivity(2.5, []float64{0.8, 1.1, 0.9}, []float64{3.1, 2.8, 3.4})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := orig.WriteActivityCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadActivityCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.StepMin != orig.StepMin || len(back.IPC) != len(orig.IPC) {
		t.Fatalf("round trip changed shape: %+v", back)
	}
	for i := range orig.IPC {
		if math.Abs(back.IPC[i]-orig.IPC[i]) > 1e-6 || math.Abs(back.CeffNF[i]-orig.CeffNF[i]) > 1e-6 {
			t.Fatalf("sample %d changed", i)
		}
	}
}

func FuzzReadActivityCSV(f *testing.F) {
	f.Add("minute,ipc,ceff_nf\n0,0.8,3.1\n1,0.9,3.3\n")
	f.Add("0,0.8,3.1\n")
	f.Add("")
	f.Add("minute,ipc,ceff_nf\n0,-1,3\n")
	f.Add("minute,ipc,ceff_nf\n0,1,3\n5,1,3\n6,1,3\n")
	f.Fuzz(func(t *testing.T, data string) {
		a, err := ReadActivityCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted profiles must be safe to evaluate anywhere.
		for _, m := range []float64{-5, 0, 3.7, 1e4} {
			ipc, ceff := a.Demand(m)
			if ipc <= 0 || ceff <= 0 || math.IsNaN(ipc) || math.IsNaN(ceff) {
				t.Fatalf("accepted profile produced bad demand %v, %v at %v", ipc, ceff, m)
			}
		}
	})
}
