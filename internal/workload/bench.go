// Package workload models the multi-programmed SPEC2000 workloads of the
// paper's evaluation (Section 5, Table 5). Each benchmark is characterized
// the way the paper's analytic optimizer sees it — an IPC and an effective
// switched capacitance — plus deterministic phase behaviour so that power
// and throughput vary over a run the way representative-interval traces do.
// High-EPI programs swing hard (the source of the H1 tracking ripples in
// Figures 13-14); low-EPI programs are smooth.
package workload

import (
	"fmt"
	"math"

	"solarcore/internal/mcore"
)

// Class is the paper's energy-per-instruction category (Table 5):
// high ≥ 15 nJ, moderate 8–15 nJ, low ≤ 8 nJ.
type Class int

// EPI classes.
const (
	HighEPI Class = iota
	ModerateEPI
	LowEPI
)

// String names the class.
func (c Class) String() string {
	switch c {
	case HighEPI:
		return "High"
	case ModerateEPI:
		return "Moderate"
	case LowEPI:
		return "Low"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Benchmark is one SPEC2000 program's execution model.
type Benchmark struct {
	Name  string
	Class Class

	BaseIPC    float64 // mean committed IPC (frequency-independent, Section 4.3)
	BaseCeffNF float64 // mean effective switched capacitance, nF

	// PhaseAmp is the relative amplitude of program-phase swings applied to
	// IPC and capacitance; PhasePeriodMin is the dominant phase period.
	PhaseAmp       float64
	PhasePeriodMin float64
}

// All lists the twelve benchmarks used by Table 5, grouped by class.
var All = []Benchmark{
	// High EPI: lower-IPC, high-activity programs (15-17 nJ/instr at the
	// top operating point of the default chip).
	{Name: "art", Class: HighEPI, BaseIPC: 0.72, BaseCeffNF: 4.0, PhaseAmp: 0.40, PhasePeriodMin: 14},
	{Name: "apsi", Class: HighEPI, BaseIPC: 0.76, BaseCeffNF: 4.2, PhaseAmp: 0.30, PhasePeriodMin: 19},
	{Name: "bzip", Class: HighEPI, BaseIPC: 0.80, BaseCeffNF: 4.3, PhaseAmp: 0.25, PhasePeriodMin: 11},
	{Name: "gzip", Class: HighEPI, BaseIPC: 0.83, BaseCeffNF: 4.4, PhaseAmp: 0.22, PhasePeriodMin: 8},

	// Moderate EPI (10.5-11.5 nJ/instr).
	{Name: "gcc", Class: ModerateEPI, BaseIPC: 0.98, BaseCeffNF: 3.4, PhaseAmp: 0.28, PhasePeriodMin: 16},
	{Name: "mcf", Class: ModerateEPI, BaseIPC: 0.92, BaseCeffNF: 3.1, PhaseAmp: 0.35, PhasePeriodMin: 23},
	{Name: "gap", Class: ModerateEPI, BaseIPC: 1.02, BaseCeffNF: 3.7, PhaseAmp: 0.20, PhasePeriodMin: 13},
	{Name: "vpr", Class: ModerateEPI, BaseIPC: 1.00, BaseCeffNF: 3.5, PhaseAmp: 0.18, PhasePeriodMin: 10},

	// Low EPI: higher-IPC, smooth programs (6.5-7 nJ/instr).
	{Name: "mesa", Class: LowEPI, BaseIPC: 1.28, BaseCeffNF: 2.3, PhaseAmp: 0.08, PhasePeriodMin: 17},
	{Name: "equake", Class: LowEPI, BaseIPC: 1.22, BaseCeffNF: 2.4, PhaseAmp: 0.12, PhasePeriodMin: 21},
	{Name: "lucas", Class: LowEPI, BaseIPC: 1.25, BaseCeffNF: 2.2, PhaseAmp: 0.10, PhasePeriodMin: 9},
	{Name: "swim", Class: LowEPI, BaseIPC: 1.18, BaseCeffNF: 2.1, PhaseAmp: 0.15, PhasePeriodMin: 26},
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// EPI returns the benchmark's average energy per instruction (nJ) at the
// chip's top operating point — the quantity Table 5 classifies by.
// EPI = P / (IPC·f) with P in watts and IPC·f in GIPS.
func (b Benchmark) EPI(cfg mcore.Config) float64 {
	top := cfg.Points[len(cfg.Points)-1]
	p := b.BaseCeffNF*top.VoltV*top.VoltV*top.FreqGHz + cfg.LeakWPerV*top.VoltV + cfg.ActiveWatts
	return p / (b.BaseIPC * top.FreqGHz)
}

// Instance is a benchmark running on one core, de-phased from other copies
// of the same program by a per-core offset. It implements mcore.Activity.
type Instance struct {
	Bench     Benchmark
	OffsetMin float64
}

var _ mcore.Activity = Instance{}

// NewInstance places a benchmark on a core with a deterministic phase
// offset derived from the core index, so homogeneous mixes still expose
// per-core diversity at any instant (and the TPR table has something to
// sort).
func NewInstance(b Benchmark, core int) Instance {
	return Instance{Bench: b, OffsetMin: b.PhasePeriodMin * 0.37 * float64(core)}
}

// Demand returns the instantaneous IPC and effective capacitance at the
// given simulation minute: the base values modulated by two incommensurate
// sinusoids scaled by the benchmark's phase amplitude.
func (in Instance) Demand(minute float64) (ipc, ceffNF float64) {
	b := in.Bench
	t := minute + in.OffsetMin
	w1 := 2 * math.Pi / b.PhasePeriodMin
	w2 := 2 * math.Pi / (b.PhasePeriodMin * 0.373)
	swingI := b.PhaseAmp * (0.6*math.Sin(w1*t) + 0.4*math.Sin(w2*t+2.1))
	swingC := b.PhaseAmp * (0.7*math.Sin(w1*t+0.7) + 0.3*math.Sin(w2*t+1.9))
	ipc = b.BaseIPC * clampFactor(1+swingI)
	ceffNF = b.BaseCeffNF * clampFactor(1+swingC)
	return ipc, ceffNF
}

// clampFactor keeps phase modulation from driving behaviour negative.
func clampFactor(f float64) float64 {
	if f < 0.05 {
		return 0.05
	}
	return f
}
