package workload

import (
	"math"
	"testing"
	"testing/quick"

	"solarcore/internal/mcore"
)

func TestEPIClassBands(t *testing.T) {
	// Table 5 classification: high ≥ 15 nJ, moderate in (8, 15), low ≤ 8.
	cfg := mcore.DefaultConfig()
	for _, b := range All {
		epi := b.EPI(cfg)
		switch b.Class {
		case HighEPI:
			if epi < 15 {
				t.Errorf("%s: EPI %.1f nJ, want ≥ 15", b.Name, epi)
			}
		case ModerateEPI:
			if epi < 8 || epi > 15 {
				t.Errorf("%s: EPI %.1f nJ, want 8-15", b.Name, epi)
			}
		case LowEPI:
			if epi > 8 {
				t.Errorf("%s: EPI %.1f nJ, want ≤ 8", b.Name, epi)
			}
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("art")
	if err != nil || b.Name != "art" || b.Class != HighEPI {
		t.Errorf("ByName(art) = %+v, %v", b, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestClassString(t *testing.T) {
	if HighEPI.String() != "High" || ModerateEPI.String() != "Moderate" || LowEPI.String() != "Low" {
		t.Error("class names wrong")
	}
	if Class(9).String() == "" {
		t.Error("unknown class should still stringify")
	}
}

func TestDemandPositiveAndBounded(t *testing.T) {
	// Property: demand stays positive and within the phase envelope for all
	// benchmarks and times.
	prop := func(bi uint8, minRaw uint16) bool {
		b := All[int(bi)%len(All)]
		in := NewInstance(b, int(bi)%8)
		minute := float64(minRaw) / 40 // 0..~27h
		ipc, ceff := in.Demand(minute)
		if ipc <= 0 || ceff <= 0 {
			return false
		}
		return ipc <= b.BaseIPC*(1+b.PhaseAmp)+1e-9 &&
			ceff <= b.BaseCeffNF*(1+b.PhaseAmp)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDemandVariesOverTime(t *testing.T) {
	in := NewInstance(mustBench(t, "art"), 0)
	_, c0 := in.Demand(0)
	varies := false
	for m := 1.0; m < 30; m++ {
		if _, c := in.Demand(m); math.Abs(c-c0) > 0.05 {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("art demand should vary over a 30-minute window")
	}
}

func TestPhaseOffsetsDesynchronizeCores(t *testing.T) {
	// Two copies of the same benchmark on different cores must differ at
	// some instant — this is what gives the TPR table an ordering even for
	// homogeneous mixes.
	a := NewInstance(mustBench(t, "art"), 0)
	b := NewInstance(mustBench(t, "art"), 3)
	differ := false
	for m := 0.0; m < 30; m++ {
		ia, _ := a.Demand(m)
		ib, _ := b.Demand(m)
		if math.Abs(ia-ib) > 0.01 {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("same benchmark on different cores should be phase-shifted")
	}
}

func TestHighEPISwingsHarder(t *testing.T) {
	// The source of H1's tracking ripples: art's power-relevant swing
	// amplitude dwarfs mesa's.
	swing := func(name string) float64 {
		in := NewInstance(mustBench(t, name), 0)
		lo, hi := math.Inf(1), math.Inf(-1)
		for m := 0.0; m < 120; m += 0.5 {
			_, c := in.Demand(m)
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		return (hi - lo) / ((hi + lo) / 2)
	}
	if sa, sm := swing("art"), swing("mesa"); sa < 2.5*sm {
		t.Errorf("art swing %.3f not well above mesa swing %.3f", sa, sm)
	}
}

func mustBench(t *testing.T, name string) Benchmark {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestClampFactor(t *testing.T) {
	if clampFactor(-1) != 0.05 {
		t.Error("negative factor should clamp")
	}
	if clampFactor(0.9) != 0.9 {
		t.Error("valid factor should pass through")
	}
}
