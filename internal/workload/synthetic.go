package workload

import (
	"fmt"
	"math/rand"
)

// SyntheticMix draws a deterministic random 8-program mix with the given
// number of programs from each EPI class — generating workloads beyond the
// ten of Table 5 for robustness studies. high+moderate+low must sum to the
// chip's core count.
func SyntheticMix(name string, high, moderate, low int, seed int64) (Mix, error) {
	if high < 0 || moderate < 0 || low < 0 || high+moderate+low == 0 {
		return Mix{}, fmt.Errorf("workload: invalid class counts %d/%d/%d", high, moderate, low)
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := map[Class][]string{}
	for _, b := range All {
		byClass[b.Class] = append(byClass[b.Class], b.Name)
	}
	pick := func(class Class, n int) []string {
		pool := byClass[class]
		out := make([]string, n)
		for i := range out {
			out[i] = pool[rng.Intn(len(pool))]
		}
		return out
	}
	mix := Mix{Name: name, Kind: "synthetic"}
	mix.Programs = append(mix.Programs, pick(HighEPI, high)...)
	mix.Programs = append(mix.Programs, pick(ModerateEPI, moderate)...)
	mix.Programs = append(mix.Programs, pick(LowEPI, low)...)
	return mix, nil
}
