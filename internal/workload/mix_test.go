package workload

import (
	"fmt"
	"testing"

	"solarcore/internal/mcore"
)

func TestMixesMatchTable5(t *testing.T) {
	want := []string{"H1", "H2", "M1", "M2", "L1", "L2", "HM1", "HM2", "ML1", "ML2"}
	if len(Mixes) != len(want) {
		t.Fatalf("%d mixes, want %d", len(Mixes), len(want))
	}
	for i, m := range Mixes {
		if m.Name != want[i] {
			t.Errorf("mix %d = %s, want %s", i, m.Name, want[i])
		}
		if len(m.Programs) != 8 {
			t.Errorf("mix %s has %d programs, want 8", m.Name, len(m.Programs))
		}
		for _, p := range m.Programs {
			if _, err := ByName(p); err != nil {
				t.Errorf("mix %s references %v", m.Name, err)
			}
		}
	}
	h1, _ := MixByName("H1")
	for _, p := range h1.Programs {
		if p != "art" {
			t.Errorf("H1 should be art×8, got %v", h1.Programs)
		}
	}
	hm2, _ := MixByName("HM2")
	if hm2.Programs[2] != "art" || hm2.Programs[4] != "gcc" {
		t.Errorf("HM2 composition wrong: %v", hm2.Programs)
	}
}

func TestMixByNameUnknown(t *testing.T) {
	if _, err := MixByName("ZZ9"); err == nil {
		t.Error("unknown mix should error")
	}
}

func TestMixEPIOrdering(t *testing.T) {
	cfg := mcore.DefaultConfig()
	epi := func(name string) float64 {
		m, err := MixByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return m.MeanEPI(cfg)
	}
	// Class ordering across the mix families.
	if !(epi("H1") > epi("HM1") && epi("HM1") > epi("M1") && epi("M1") > epi("ML1") && epi("ML1") > epi("L1")) {
		t.Errorf("mix EPI ordering violated: H1=%.1f HM1=%.1f M1=%.1f ML1=%.1f L1=%.1f",
			epi("H1"), epi("HM1"), epi("M1"), epi("ML1"), epi("L1"))
	}
}

func TestMixApply(t *testing.T) {
	chip := mcore.MustNewChip(mcore.DefaultConfig())
	m, _ := MixByName("HM2")
	if err := m.Apply(chip); err != nil {
		t.Fatal(err)
	}
	chip.SetAllLevels(5)
	// After applying a heterogeneous mix the cores must not all draw the
	// same power (different benchmarks, different capacitance).
	p0 := chip.CorePower(0, 0)
	diverse := false
	for i := 1; i < 8; i++ {
		if chip.CorePower(i, 0) != p0 {
			diverse = true
		}
	}
	if !diverse {
		t.Error("heterogeneous mix produced uniform core powers")
	}
}

func TestMixApplyCoreCountMismatch(t *testing.T) {
	cfg := mcore.DefaultConfig()
	cfg.Cores = 4
	chip := mcore.MustNewChip(cfg)
	m, _ := MixByName("H1")
	if err := m.Apply(chip); err == nil {
		t.Error("8-program mix on 4-core chip should error")
	}
}

func TestInstancesBadProgram(t *testing.T) {
	m := Mix{Name: "bad", Programs: []string{"nope"}}
	if _, err := m.Instances(); err == nil {
		t.Error("bad program should error")
	}
	chip := mcore.MustNewChip(mcore.DefaultConfig())
	if err := m.Apply(chip); err == nil {
		t.Error("bad program should error in Apply")
	}
}

func TestSyntheticMix(t *testing.T) {
	m, err := SyntheticMix("S1", 3, 3, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Programs) != 8 || m.Kind != "synthetic" {
		t.Fatalf("mix = %+v", m)
	}
	// Class layout holds.
	for i, name := range m.Programs {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var want Class
		switch {
		case i < 3:
			want = HighEPI
		case i < 6:
			want = ModerateEPI
		default:
			want = LowEPI
		}
		if b.Class != want {
			t.Errorf("slot %d: %s is %v, want %v", i, name, b.Class, want)
		}
	}
	// Deterministic per seed, varies across seeds.
	m2, _ := SyntheticMix("S1", 3, 3, 2, 42)
	if fmt.Sprint(m.Programs) != fmt.Sprint(m2.Programs) {
		t.Error("same seed gave different mixes")
	}
	diff := false
	for s := int64(1); s < 20 && !diff; s++ {
		m3, _ := SyntheticMix("S1", 3, 3, 2, s)
		if fmt.Sprint(m3.Programs) != fmt.Sprint(m.Programs) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds never changed the mix")
	}
	// A synthetic mix runs on a chip like any Table 5 mix.
	chip := mcore.MustNewChip(mcore.DefaultConfig())
	if err := m.Apply(chip); err != nil {
		t.Fatal(err)
	}
	if _, err := SyntheticMix("bad", -1, 0, 0, 1); err == nil {
		t.Error("negative count should error")
	}
	if _, err := SyntheticMix("bad", 0, 0, 0, 1); err == nil {
		t.Error("empty mix should error")
	}
}
