package workload

import (
	"fmt"

	"solarcore/internal/mcore"
)

// Mix is one multi-programmed workload of Table 5: eight programs, one per
// core.
type Mix struct {
	Name     string
	Kind     string // the paper's homogeneity label
	Programs []string
}

// Mixes lists the ten evaluated workloads in the paper's order (Table 5).
var Mixes = []Mix{
	{Name: "H1", Kind: "homogeneous", Programs: rep("art", 8)},
	{Name: "H2", Kind: "less homogeneous", Programs: []string{"art", "art", "apsi", "apsi", "bzip", "bzip", "gzip", "gzip"}},
	{Name: "M1", Kind: "homogeneous", Programs: rep("gcc", 8)},
	{Name: "M2", Kind: "less homogeneous", Programs: []string{"gcc", "gcc", "mcf", "mcf", "gap", "gap", "vpr", "vpr"}},
	{Name: "L1", Kind: "homogeneous", Programs: rep("mesa", 8)},
	{Name: "L2", Kind: "less homogeneous", Programs: []string{"mesa", "mesa", "equake", "equake", "lucas", "lucas", "swim", "swim"}},
	{Name: "HM1", Kind: "less heterogeneous", Programs: []string{"bzip", "bzip", "bzip", "bzip", "gcc", "gcc", "gcc", "gcc"}},
	{Name: "HM2", Kind: "heterogeneous", Programs: []string{"bzip", "gzip", "art", "apsi", "gcc", "mcf", "gap", "vpr"}},
	{Name: "ML1", Kind: "less heterogeneous", Programs: []string{"gcc", "gcc", "gcc", "gcc", "mesa", "mesa", "mesa", "mesa"}},
	{Name: "ML2", Kind: "heterogeneous", Programs: []string{"gcc", "mcf", "gap", "vpr", "mesa", "equake", "lucas", "swim"}},
}

func rep(name string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = name
	}
	return out
}

// MixByName returns the Table 5 mix with the given name.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// Instances resolves the mix into per-core benchmark instances.
func (m Mix) Instances() ([]Instance, error) {
	out := make([]Instance, len(m.Programs))
	for i, name := range m.Programs {
		b, err := ByName(name)
		if err != nil {
			return nil, fmt.Errorf("workload: mix %s: %w", m.Name, err)
		}
		out[i] = NewInstance(b, i)
	}
	return out, nil
}

// Apply assigns the mix's programs to the chip's cores. The chip must have
// exactly as many cores as the mix has programs.
func (m Mix) Apply(chip *mcore.Chip) error {
	ins, err := m.Instances()
	if err != nil {
		return err
	}
	if chip.NumCores() != len(ins) {
		return fmt.Errorf("workload: mix %s has %d programs, chip has %d cores", m.Name, len(ins), chip.NumCores())
	}
	for i, in := range ins {
		if err := chip.SetActivity(i, in); err != nil {
			return err
		}
	}
	return nil
}

// MeanEPI returns the mix's average benchmark EPI (nJ) at the chip's top
// operating point.
func (m Mix) MeanEPI(cfg mcore.Config) float64 {
	sum := 0.0
	for _, name := range m.Programs {
		b, err := ByName(name)
		if err != nil {
			continue
		}
		sum += b.EPI(cfg)
	}
	return sum / float64(len(m.Programs))
}
