package route

import (
	"context"
	"errors"
	"time"

	"solarcore/client"
)

// attemptResult carries one upstream attempt's outcome back to the
// fetch loop.
type attemptResult struct {
	res   *client.RunResult
	err   error
	b     *backend
	hedge bool // launched by the hedge timer
	retry bool // launched by the retry path
}

// fetchRun resolves one run against the fleet. It routes to the key's
// ring owner, hedges to the next distinct owner after hedgeDelay if the
// primary is still silent, and fails over on retryable errors with
// capped backoff. The first success wins and every other attempt is
// canceled through the shared attempt context. Returns the winning
// result, its route disposition (client.RoutePrimary/Hedged/Retried)
// and the winning backend's base URL.
func (rt *Router) fetchRun(ctx context.Context, key string, req client.RunRequest) (*client.RunResult, string, string, error) {
	cands := rt.ownersFor(key)
	if len(cands) == 0 {
		return nil, "", "", ErrNoBackends
	}

	// One context covers every attempt: returning (success, fatal error,
	// caller gone) cancels the losers mid-flight.
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	// Buffered to the worst-case attempt count so a finishing attempt
	// never blocks after the fetch loop has returned.
	results := make(chan attemptResult, len(cands)+rt.cfg.MaxRetries+1)

	launch := func(b *backend, hedge, retry bool, delay time.Duration) {
		go func() {
			if delay > 0 {
				t := time.NewTimer(delay)
				select {
				case <-actx.Done():
					t.Stop()
					// The loop has returned (or the caller is gone); the
					// buffered send below would only be dropped, so skip
					// the attempt entirely.
					results <- attemptResult{err: actx.Err(), b: b, hedge: hedge, retry: retry}
					return
				case <-t.C:
				}
				t.Stop()
			}
			start := rt.cfg.Clock()
			res, err := b.cli.Run(actx, req)
			if err == nil && !start.IsZero() {
				ms := rt.cfg.Clock().Sub(start).Seconds() * 1000
				rt.lat.add(ms)
				rt.reg.Observe(MetricUpstreamMs, ms)
			}
			results <- attemptResult{res: res, err: err, b: b, hedge: hedge, retry: retry}
		}()
	}

	next := 0 // next candidate index to launch
	launch(cands[next], false, false, 0)
	next++
	inflight := 1
	retries := 0

	// The hedge timer arms only when a second distinct owner exists —
	// hedging to the same node would just double its load.
	var hedgeC <-chan time.Time
	if next < len(cands) {
		t := time.NewTimer(rt.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, "", "", ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) {
				rt.reg.Add(MetricHedges, 1)
				launch(cands[next], true, false, 0)
				next++
				inflight++
			}
		case r := <-results:
			inflight--
			if r.err == nil {
				disp := client.RoutePrimary
				switch {
				case r.hedge:
					rt.reg.Add(MetricHedgeWins, 1)
					disp = client.RouteHedged
				case r.retry:
					disp = client.RouteRetried
				}
				return r.res, disp, r.b.name, nil
			}
			if !retryable(r.err) {
				// Deterministic failures (400s, caller cancellation) would
				// repeat identically on another node; surface them now.
				return nil, "", "", r.err
			}
			lastErr = r.err
			if retries < rt.cfg.MaxRetries && next < len(cands) {
				retries++
				rt.reg.Add(MetricRetries, 1)
				launch(cands[next], false, true, rt.backoff(retries, r.err))
				next++
				inflight++
			} else if inflight == 0 {
				return nil, "", "", lastErr
			}
		}
	}
}

// retryable reports whether err is worth failing over: transient
// upstream statuses (429/5xx) and transport failures are, deterministic
// rejections and caller cancellation are not.
func retryable(err error) bool {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Temporary()
	}
	// A failed body checksum means the bytes were damaged in flight, not
	// that the computation is wrong: the engine is deterministic, so the
	// next owner reproduces the result byte-identically.
	var ie *client.IntegrityError
	if errors.As(err, &ie) {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Anything else is a transport-level failure (refused, reset, EOF):
	// exactly the class fail-over exists for.
	return true
}

// backoff computes the delay before retry attempt n (1-based): capped
// exponential from BackoffBase, raised to the upstream's Retry-After
// hint when that is longer, never above BackoffCap.
func (rt *Router) backoff(n int, err error) time.Duration {
	d := rt.cfg.BackoffBase << (n - 1)
	var ae *client.APIError
	if errors.As(err, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	if d > rt.cfg.BackoffCap {
		d = rt.cfg.BackoffCap
	}
	return d
}
