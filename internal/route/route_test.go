package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"solarcore"
	"solarcore/client"
	"solarcore/internal/obs"
)

// fakeNode is a scriptable stand-in for one solard backend: per-node
// delay, injected failure status and health answer are all settable
// mid-test through atomics.
type fakeNode struct {
	ts        *httptest.Server
	runs      atomic.Int32 // /v1/run requests received
	canceled  atomic.Int32 // /v1/run requests whose context died mid-delay
	delayNs   atomic.Int64
	failCode  atomic.Int32 // non-zero: answer /v1/run with this status
	healthyOK atomic.Bool  // /healthz answer
	badSum    atomic.Bool  // declare a wrong X-Body-Sum on /v1/run
}

func (f *fakeNode) url() string { return f.ts.URL }

func (f *fakeNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		f.runs.Add(1)
		// Drain the body: the HTTP/1 server only watches for a client
		// abort once the request body is consumed, and the cancellation
		// tests depend on that watch.
		_, _ = io.Copy(io.Discard, r.Body)
		if d := time.Duration(f.delayNs.Load()); d > 0 {
			select {
			case <-r.Context().Done():
				f.canceled.Add(1)
				return
			case <-time.After(d):
			}
		}
		if code := int(f.failCode.Load()); code != 0 {
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			client.WriteError(w, code, "injected", "injected failure")
			return
		}
		w.Header().Set(client.HeaderCache, obs.CacheHit)
		w.Header().Set("Content-Type", "application/json")
		if f.badSum.Load() {
			// A sum that cannot match any body: simulated in-flight
			// corruption the typed client must catch.
			w.Header().Set(client.HeaderBodySum, "crc32c:00000000")
		}
		fmt.Fprintf(w, `{"served_by":%q}`, f.ts.URL)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := obs.NewRegistry()
		reg.Add("serve_runs_total", 7)
		_ = reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if !f.healthyOK.Load() {
			client.WriteError(w, http.StatusServiceUnavailable, client.CodeDraining, "draining")
			return
		}
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	})
	return mux
}

// newFleet starts n fake nodes and returns them with their base URLs.
func newFleet(t *testing.T, n int) ([]*fakeNode, []string) {
	t.Helper()
	nodes := make([]*fakeNode, n)
	urls := make([]string, n)
	for i := range nodes {
		f := &fakeNode{}
		f.healthyOK.Store(true)
		f.ts = httptest.NewServer(f.handler())
		t.Cleanup(f.ts.Close)
		nodes[i] = f
		urls[i] = f.ts.URL
	}
	return nodes, urls
}

func newTestRouter(t *testing.T, urls []string, mut func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Backends:    urls,
		Clock:       time.Now,
		HedgeDelay:  time.Second, // effectively off unless a test lowers it
		BackoffBase: time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

// spec returns a distinct valid run spec per index.
func spec(i int) client.RunRequest {
	return client.RunRequest{V: client.WireVersion, RunSpec: solarcore.RunSpec{Day: i, StepMin: 8}}
}

// postRun sends one run request through the router's handler.
func postRun(t *testing.T, rt *Router, req client.RunRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body)))
	return rec
}

// ownerOrder maps the ring's candidate order for req onto the fleet.
func ownerOrder(rt *Router, nodes []*fakeNode, req client.RunRequest) []*fakeNode {
	idxs := rt.ring.owners(req.Hash(), len(nodes))
	out := make([]*fakeNode, len(idxs))
	for i, idx := range idxs {
		for _, n := range nodes {
			if n.url() == rt.backends[idx].name {
				out[i] = n
			}
		}
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHedgeCancelsLoser(t *testing.T) {
	nodes, urls := newFleet(t, 2)
	rt := newTestRouter(t, urls, func(c *Config) { c.HedgeDelay = 20 * time.Millisecond })
	req := spec(1)
	order := ownerOrder(rt, nodes, req)
	order[0].delayNs.Store(int64(3 * time.Second)) // primary stalls

	rec := postRun(t, rt, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(client.HeaderRoute); got != client.RouteHedged {
		t.Errorf("%s = %q, want %q", client.HeaderRoute, got, client.RouteHedged)
	}
	if got := rec.Header().Get(client.HeaderBackend); got != order[1].url() {
		t.Errorf("%s = %q, want hedge target %q", client.HeaderBackend, got, order[1].url())
	}
	if !strings.Contains(rec.Body.String(), order[1].url()) {
		t.Errorf("body %s not served by hedge target", rec.Body)
	}
	// The stalled primary's request context must die with the fetch.
	waitFor(t, "loser cancellation", func() bool { return order[0].canceled.Load() == 1 })
	snap := rt.Metrics()
	if snap.Counters[MetricHedges] != 1 || snap.Counters[MetricHedgeWins] != 1 {
		t.Errorf("hedge counters = %v/%v, want 1/1",
			snap.Counters[MetricHedges], snap.Counters[MetricHedgeWins])
	}
}

func TestRetryFailsOverOn5xx(t *testing.T) {
	nodes, urls := newFleet(t, 2)
	rt := newTestRouter(t, urls, nil)
	req := spec(2)
	order := ownerOrder(rt, nodes, req)
	order[0].failCode.Store(http.StatusServiceUnavailable)

	rec := postRun(t, rt, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(client.HeaderRoute); got != client.RouteRetried {
		t.Errorf("%s = %q, want %q", client.HeaderRoute, got, client.RouteRetried)
	}
	if got := rec.Header().Get(client.HeaderBackend); got != order[1].url() {
		t.Errorf("%s = %q, want failover target %q", client.HeaderBackend, got, order[1].url())
	}
	if n := rt.Metrics().Counters[MetricRetries]; n != 1 {
		t.Errorf("%s = %v, want 1", MetricRetries, n)
	}
}

func TestDeterministicErrorDoesNotFailOver(t *testing.T) {
	nodes, urls := newFleet(t, 2)
	rt := newTestRouter(t, urls, nil)
	req := spec(3)
	order := ownerOrder(rt, nodes, req)
	order[0].failCode.Store(http.StatusBadRequest)

	rec := postRun(t, rt, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 passed through (body %s)", rec.Code, rec.Body)
	}
	e := client.DecodeError(rec.Code, rec.Header(), rec.Body.Bytes())
	if e.Code != "injected" {
		t.Errorf("error code = %q, want upstream's %q", e.Code, "injected")
	}
	if n := order[1].runs.Load(); n != 0 {
		t.Errorf("secondary saw %d runs, want 0 (400 must not fail over)", n)
	}
}

func TestEjectionAndReadmission(t *testing.T) {
	nodes, urls := newFleet(t, 2)
	rt := newTestRouter(t, urls, func(c *Config) {
		c.ProbeInterval = 10 * time.Millisecond
		c.FailThreshold = 2
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Start(ctx)

	// Wait on the gauge, not Healthy(): the prober flips the health bit
	// first and mirrors it into the gauge last, so the gauge settling
	// means the whole ejection (bit + counter) is visible.
	nodes[0].healthyOK.Store(false)
	waitFor(t, "ejection", func() bool {
		return rt.Metrics().Gauges[MetricBackendsHealthy] == 1
	})
	if rt.Healthy() != 1 {
		t.Errorf("Healthy() = %d, want 1", rt.Healthy())
	}
	if n := rt.Metrics().Counters[MetricEjections]; n != 1 {
		t.Errorf("%s = %v, want 1", MetricEjections, n)
	}
	if g := rt.Metrics().Gauges[MetricBackendsHealthy]; g != 1 {
		t.Errorf("%s gauge = %v, want 1", MetricBackendsHealthy, g)
	}

	// Keys whose primary is ejected reroute to the survivor.
	var survivor *fakeNode
	for _, n := range nodes {
		if n.healthyOK.Load() {
			survivor = n
		}
	}
	for i := 0; i < 8; i++ {
		rec := postRun(t, rt, spec(100+i))
		if rec.Code != http.StatusOK {
			t.Fatalf("run %d during ejection: status %d body %s", i, rec.Code, rec.Body)
		}
		if got := rec.Header().Get(client.HeaderBackend); got != survivor.url() {
			t.Errorf("run %d served by %q, want survivor %q", i, got, survivor.url())
		}
	}

	nodes[0].healthyOK.Store(true)
	waitFor(t, "re-admission", func() bool {
		return rt.Metrics().Gauges[MetricBackendsHealthy] == 2
	})
	if n := rt.Metrics().Counters[MetricReadmissions]; n != 1 {
		t.Errorf("%s = %v, want 1", MetricReadmissions, n)
	}
}

func TestSweepFanOutPreservesOrder(t *testing.T) {
	nodes, urls := newFleet(t, 3)
	rt := newTestRouter(t, urls, nil)

	const cells = 12
	sweep := client.SweepRequest{V: client.WireVersion}
	for i := 0; i < cells; i++ {
		sweep.Runs = append(sweep.Runs, spec(i))
	}
	body, _ := json.Marshal(sweep)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status = %d, body %s", rec.Code, rec.Body)
	}
	var resp client.SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Results) != cells {
		t.Fatalf("got %d results, want %d", len(resp.Results), cells)
	}
	for i, item := range resp.Results {
		if item.Error != "" {
			t.Fatalf("cell %d failed: %s", i, item.Error)
		}
		if want := sweep.Runs[i].Hash(); item.Hash != want {
			t.Errorf("cell %d hash %q out of order (want %q)", i, item.Hash, want)
		}
		// Every cell must have been served by its ring owner.
		owner := ownerOrder(rt, nodes, sweep.Runs[i])[0]
		if !strings.Contains(string(item.Result), owner.url()) {
			t.Errorf("cell %d result %s not from owner %s", i, item.Result, owner.url())
		}
	}
	// A 12-cell sweep over 3 nodes must touch more than one node.
	touched := 0
	for _, n := range nodes {
		if n.runs.Load() > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Errorf("sweep touched %d nodes, want >= 2", touched)
	}
}

func TestWireVersionRejected(t *testing.T) {
	_, urls := newFleet(t, 1)
	rt := newTestRouter(t, urls, nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run",
		strings.NewReader(`{"v":9,"step_min":8}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if e := client.DecodeError(rec.Code, rec.Header(), rec.Body.Bytes()); e.Code != client.CodeUnsupportedVersion {
		t.Errorf("code = %q, want %q", e.Code, client.CodeUnsupportedVersion)
	}
}

func TestNoHealthyBackends(t *testing.T) {
	_, urls := newFleet(t, 1)
	rt := newTestRouter(t, urls, nil)
	rt.backends[0].healthy.Store(false)

	rec := postRun(t, rt, spec(4))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("run status = %d, want 503", rec.Code)
	}
	e := client.DecodeError(rec.Code, rec.Header(), rec.Body.Bytes())
	if e.Code != client.CodeNoBackends {
		t.Errorf("code = %q, want %q", e.Code, client.CodeNoBackends)
	}
	if e.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", e.RetryAfter)
	}

	hrec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hrec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz status = %d, want 503", hrec.Code)
	}
}

func TestDrainingRefusesNewWork(t *testing.T) {
	_, urls := newFleet(t, 1)
	rt := newTestRouter(t, urls, nil)
	rt.StartDrain()
	rec := postRun(t, rt, spec(5))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if e := client.DecodeError(rec.Code, rec.Header(), rec.Body.Bytes()); e.Code != client.CodeDraining {
		t.Errorf("code = %q, want %q", e.Code, client.CodeDraining)
	}
}

func TestMetricsMergeAcrossFleet(t *testing.T) {
	_, urls := newFleet(t, 3)
	rt := newTestRouter(t, urls, nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Every fake reports serve_runs_total=7; the merge must sum them.
	if got := snap.Counters["serve_runs_total"]; got != 21 {
		t.Errorf("merged serve_runs_total = %v, want 21", got)
	}
	if snap.Gauges[MetricBackendsHealthy] != 3 {
		t.Errorf("gauge %s = %v, want 3", MetricBackendsHealthy, snap.Gauges[MetricBackendsHealthy])
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no backends succeeded")
	}
	if _, err := New(Config{Backends: []string{"http://a", "http://a/"}}); err == nil {
		t.Error("New with duplicate backends succeeded")
	}
	if _, err := New(Config{Backends: []string{""}}); err == nil {
		t.Error("New with empty backend succeeded")
	}
}
