package route

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
)

// testKey fabricates a hex key the fast path of keyPoint accepts, like
// a real RunSpec.Hash.
func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return fmt.Sprintf("%x", sum)
}

const ringKeys = 2000

func TestRingBalance(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r := buildRing(names, 64)
	counts := make([]int, len(names))
	for i := 0; i < ringKeys; i++ {
		counts[r.owners(testKey(i), 1)[0]]++
	}
	for idx, c := range counts {
		share := float64(c) / ringKeys
		if share < 0.15 || share > 0.55 {
			t.Errorf("backend %d owns %.1f%% of keys, want 15%%..55%% (counts %v)",
				idx, share*100, counts)
		}
	}
}

// Removing a backend must not move any key that the victim did not own:
// that is the property that keeps the surviving nodes' caches warm.
func TestRingRemovalKeepsSurvivorOwnership(t *testing.T) {
	all := buildRing([]string{"http://a", "http://b", "http://c"}, 64)
	ab := buildRing([]string{"http://a", "http://b"}, 64)
	moved := 0
	for i := 0; i < ringKeys; i++ {
		k := testKey(i)
		was := all.owners(k, 1)[0]
		now := ab.owners(k, 1)[0]
		if was == 2 {
			moved++
			continue // c's keys must land somewhere else; anywhere is fine
		}
		if now != was {
			t.Fatalf("key %d moved from surviving backend %d to %d on removal", i, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("backend c owned no keys; balance test should have caught this")
	}
}

// Adding a backend may only move keys onto the newcomer, and only a
// bounded fraction of them (~1/3 for a 2→3 grow).
func TestRingAdditionMovesBoundedFraction(t *testing.T) {
	ab := buildRing([]string{"http://a", "http://b"}, 64)
	all := buildRing([]string{"http://a", "http://b", "http://c"}, 64)
	moved := 0
	for i := 0; i < ringKeys; i++ {
		k := testKey(i)
		was := ab.owners(k, 1)[0]
		now := all.owners(k, 1)[0]
		if now == was {
			continue
		}
		if now != 2 {
			t.Fatalf("key %d moved from %d to %d, but only the new backend may gain keys", i, was, now)
		}
		moved++
	}
	frac := float64(moved) / ringKeys
	if frac < 0.10 || frac > 0.60 {
		t.Errorf("addition moved %.1f%% of keys, want 10%%..60%% (expected ~33%%)", frac*100)
	}
}

func TestOwnersDistinctAndOrdered(t *testing.T) {
	r := buildRing([]string{"http://a", "http://b", "http://c"}, 64)
	for i := 0; i < 50; i++ {
		k := testKey(i)
		three := r.owners(k, 3)
		if len(three) != 3 {
			t.Fatalf("owners(%q, 3) = %v, want 3 distinct", k, three)
		}
		seen := map[int]bool{}
		for _, idx := range three {
			if seen[idx] {
				t.Fatalf("owners(%q, 3) = %v repeats backend %d", k, three, idx)
			}
			seen[idx] = true
		}
		// The shorter list is a strict prefix: the hedge target does not
		// depend on how many candidates the caller asked for.
		if one := r.owners(k, 1); one[0] != three[0] {
			t.Fatalf("owners(%q, 1) = %v disagrees with owners(,3) = %v", k, one, three)
		}
	}
	if got := r.owners(testKey(0), 9); len(got) != 3 {
		t.Errorf("owners(k, 9) over 3 backends = %v, want exactly 3", got)
	}
}

func TestKeyPointFastPath(t *testing.T) {
	// A 64-hex-digit key decodes its leading 16 digits directly.
	key := "00000000000000ff" + "0000000000000000000000000000000000000000000000000000"
	if got := keyPoint(key); got != 0xff {
		t.Errorf("keyPoint(hex) = %#x, want 0xff", got)
	}
	// A non-hex key falls back to hashing and must still be stable.
	a, b := keyPoint("not hex at all!!"), keyPoint("not hex at all!!")
	if a != b {
		t.Errorf("fallback keyPoint unstable: %#x vs %#x", a, b)
	}
	sum := sha256.Sum256([]byte("not hex at all!!"))
	if want := binary.BigEndian.Uint64(sum[:8]); a != want {
		t.Errorf("fallback keyPoint = %#x, want sha256 prefix %#x", a, want)
	}
}
