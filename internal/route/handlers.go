package route

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"solarcore/client"
	"solarcore/internal/obs"
)

// statusRecorder captures status and body size for metrics and the
// access log (same shape as internal/serve's — each server owns its
// middleware; only the wire contract is shared).
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach Flush through the recorder (the stream relay flushes per event).
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// countPanic records one contained panic (single registration site for
// the counter).
func (rt *Router) countPanic() {
	rt.reg.Add(MetricPanics, 1)
}

// instrument wraps a handler with request counting, panic containment
// and the access log.
func (rt *Router) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := rt.cfg.Clock()
		defer func() {
			if p := recover(); p != nil {
				rt.countPanic()
				if rec.status == 0 {
					client.WriteError(rec, http.StatusInternalServerError, client.CodeInternal, "internal error")
				}
			}
			rt.reg.Add(MetricRequests, 1)
			if rt.cfg.AccessLog != nil {
				status := rec.status
				if status == 0 {
					status = http.StatusOK
				}
				rt.cfg.AccessLog.OnAccess(obs.AccessEvent{
					Method: r.Method,
					Path:   r.URL.Path,
					Status: status,
					DurMs:  rt.cfg.Clock().Sub(start).Seconds() * 1000,
					Bytes:  rec.bytes,
					Cache:  rec.Header().Get(client.HeaderCache),
					Remote: r.RemoteAddr,
				})
			}
		}()
		h(rec, r)
	})
}

// writeJSON writes v with the given status; a late encode failure
// cannot reach the client anymore and is dropped deliberately.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeFetchError maps a fetchRun failure onto the wire envelope. An
// upstream APIError passes through with its original status, code and
// Retry-After — the gate is transparent to solard's own semantics; gate-
// local conditions get their own codes.
func (rt *Router) writeFetchError(w http.ResponseWriter, err error) {
	var ae *client.APIError
	switch {
	case errors.As(err, &ae):
		if ae.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(ae.RetryAfter.Seconds())))
		}
		client.WriteError(w, ae.Status, ae.Code, ae.Message)
	case errors.Is(err, ErrNoBackends):
		w.Header().Set("Retry-After", "1")
		client.WriteError(w, http.StatusServiceUnavailable, client.CodeNoBackends, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		client.WriteError(w, http.StatusGatewayTimeout, client.CodeDeadline, err.Error())
	case errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		client.WriteError(w, http.StatusServiceUnavailable, client.CodeCanceled, err.Error())
	default:
		client.WriteError(w, http.StatusBadGateway, client.CodeUnreachable,
			fmt.Sprintf("upstream unreachable: %v", err))
	}
}

// writeDraining answers the drain rejection shared by the POST routes.
func writeDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "5")
	client.WriteError(w, http.StatusServiceUnavailable, client.CodeDraining, "router is draining")
}

// handleRun serves POST /v1/run: validate once at the edge, route to
// the owning shard, and relay the winner's body byte-for-byte. The
// response reports where the bytes came from: X-Cache is the backend's
// cache disposition, X-Gate the route disposition (primary/hedged/
// retried), X-Gate-Backend the node that answered.
func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeDraining(w)
		return
	}
	var req client.RunRequest
	if err := client.ReadJSON(w, r, &req); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, err.Error())
		return
	}
	if err := client.CheckWireVersion(req.V); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeUnsupportedVersion, err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, err.Error())
		return
	}
	res, disp, backendName, err := rt.fetchRun(r.Context(), req.Hash(), req)
	if err != nil {
		rt.writeFetchError(w, err)
		return
	}
	if res.Cache != "" {
		w.Header().Set(client.HeaderCache, res.Cache)
	}
	w.Header().Set(client.HeaderRoute, disp)
	w.Header().Set(client.HeaderBackend, backendName)
	// Re-declare integrity for the gate→client hop: the upstream sum was
	// verified by the typed client when the body arrived here.
	w.Header().Set(client.HeaderBodySum, client.BodySum(res.Body))
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(res.Body)
}

// handleSweep serves POST /v1/sweep: the batch is validated up front,
// then every cell is routed independently to its owning shard — each
// with its own hedge/retry budget — and reassembled in request order.
// Per-cell failures are reported in-place so one bad shard never loses
// the batch.
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeDraining(w)
		return
	}
	var req client.SweepRequest
	if err := client.ReadJSON(w, r, &req); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, err.Error())
		return
	}
	if err := client.CheckWireVersion(req.V); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeUnsupportedVersion, err.Error())
		return
	}
	if len(req.Runs) == 0 {
		client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, "empty sweep: give at least one run")
		return
	}
	if len(req.Runs) > rt.cfg.MaxSweep {
		client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest,
			fmt.Sprintf("sweep of %d runs exceeds the limit of %d", len(req.Runs), rt.cfg.MaxSweep))
		return
	}
	for i, item := range req.Runs {
		if err := client.CheckWireVersion(item.V); err != nil {
			client.WriteError(w, http.StatusBadRequest, client.CodeUnsupportedVersion,
				fmt.Sprintf("runs[%d]: %v", i, err))
			return
		}
		if err := item.Validate(); err != nil {
			client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest,
				fmt.Sprintf("runs[%d]: %v", i, err))
			return
		}
	}

	ctx := r.Context()
	items := make([]client.SweepItem, len(req.Runs))
	// Durable sweeps: restore cells a previous (crashed) attempt already
	// finished and journal new completions. done is written only here,
	// before the workers start, and read-only afterwards.
	done := make([]bool, len(req.Runs))
	var ck *checkpoint
	if rt.cfg.CheckpointDir != "" {
		ck = rt.openCheckpoint(sweepID(req.Runs), items, done)
	}
	workers := rt.cfg.SweepWorkers
	if workers > len(req.Runs) {
		workers = len(req.Runs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if done[i] {
					continue
				}
				items[i] = rt.sweepCell(ctx, req.Runs[i])
				if items[i].Error == "" {
					ck.record(i, items[i])
				}
			}
		}()
	}
	// Feed under the request context so a vanished client cannot wedge
	// the loop on a bare send; unfed cells report the context error.
	fed := len(req.Runs)
feed:
	for i := range req.Runs {
		select {
		case next <- i:
		case <-ctx.Done():
			fed = i
			break feed
		}
	}
	close(next)
	wg.Wait()
	for i := fed; i < len(items); i++ {
		items[i].Hash = req.Runs[i].Hash()
		items[i].Error = fmt.Errorf("sweep canceled: %w", ctx.Err()).Error()
	}
	if ck != nil {
		complete := fed == len(req.Runs)
		for _, it := range items {
			if it.Error != "" {
				complete = false
				break
			}
		}
		ck.finish(complete)
	}
	writeJSON(w, http.StatusOK, client.SweepResponse{Results: items})
}

// sweepCell routes one sweep cell as a per-cell run, containing a
// panicking code path to its own item.
func (rt *Router) sweepCell(ctx context.Context, spec client.RunRequest) (item client.SweepItem) {
	defer func() {
		if p := recover(); p != nil {
			rt.countPanic()
			item.Cache = ""
			item.Result = nil
			item.Error = fmt.Sprintf("cell panicked: %v", p)
		}
	}()
	item.Hash = spec.Hash()
	res, _, _, err := rt.fetchRun(ctx, item.Hash, spec)
	if err != nil {
		item.Error = err.Error()
		return item
	}
	item.Cache = res.Cache
	item.Result = res.Body
	return item
}

// handlePolicies proxies GET /v1/policies to the first healthy backend
// — the policy table is identical fleet-wide, so any node can answer.
func (rt *Router) handlePolicies(w http.ResponseWriter, r *http.Request) {
	var lastErr error
	for _, b := range rt.healthyBackends() {
		pols, err := b.cli.Policies(r.Context())
		if err == nil {
			writeJSON(w, http.StatusOK, client.PoliciesResponse{Policies: pols})
			return
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrNoBackends
	}
	rt.writeFetchError(w, lastErr)
}

// handleMetrics serves GET /metrics: the router's own route_* counters
// merged with every healthy backend's snapshot through
// obs.MergeSnapshots — one fleet-wide view, counters summed, gauges
// last-write, histograms pooled.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snaps := []obs.Snapshot{rt.reg.Snapshot()}
	for _, b := range rt.healthyBackends() {
		snap, err := b.cli.Metrics(r.Context())
		if err != nil {
			// A node that cannot answer /metrics right now is simply absent
			// from this scrape; the prober will eject it if it stays dark.
			continue
		}
		snaps = append(snaps, snap)
	}
	merged := obs.MergeSnapshots(snaps...)
	w.Header().Set("Content-Type", "application/json")
	// A late encode failure cannot reach the client; dropped deliberately.
	_ = merged.WriteJSON(w)
}

// handleHealthz serves GET /healthz: 200 while at least one backend is
// routable, 503 once draining or when the whole fleet is ejected.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case rt.draining.Load():
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case rt.Healthy() == 0:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no healthy backends"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"backends": rt.Healthy(),
		})
	}
}
