package route

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring: each backend contributes vnodes
// points (SHA-256 of "name#i", truncated to 64 bits), and a key is
// owned by the first point clockwise from the key's own position.
// Virtual nodes smooth the load split; consistency means adding or
// removing one backend only moves the keys that point at it, so the
// per-backend result caches of a fleet survive membership changes
// mostly intact. The ring is immutable after build — membership changes
// build a new ring — so lookups need no locking.
type ring struct {
	points []ringPoint // sorted by hash, ascending
}

// ringPoint is one virtual node: a position on the ring and the index
// of the backend that owns it.
type ringPoint struct {
	hash uint64
	idx  int
}

// buildRing places vnodes points per backend name. Names must be
// distinct; the caller (New) enforces that.
func buildRing(names []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(names)*vnodes)}
	for idx, name := range names {
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", name, v)))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), idx: idx})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on backend index so the order is deterministic even in
		// the astronomically unlikely event of a 64-bit collision.
		return r.points[i].idx < r.points[j].idx
	})
	return r
}

// keyPoint maps a request key onto the ring. RunSpec.Hash is already a
// hex SHA-256 string, so the first 16 hex digits are a uniform 64-bit
// value and need no re-hashing; any other key is hashed fresh.
func keyPoint(key string) uint64 {
	if len(key) >= 16 {
		if b, err := hex.DecodeString(key[:16]); err == nil {
			return binary.BigEndian.Uint64(b)
		}
	}
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// owners returns up to max distinct backend indices in ring order
// starting at the key's position: owners[0] is the primary, owners[1]
// the first distinct successor (the hedge/fail-over target), and so on.
func (r *ring) owners(key string, max int) []int {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := keyPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[int]bool{}
	out := make([]int, 0, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}
