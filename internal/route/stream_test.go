package route

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"solarcore/client"
	"solarcore/internal/obs"
)

// streamLine is one scripted event of a fake backend's feed.
type streamLine struct {
	typ  string
	data []byte
}

// scriptEvents builds a valid run event sequence: run_start, n ticks,
// run_end — the JSONL lines a real solard would stream, ids 1..n+2.
func scriptEvents(t *testing.T, n int) []streamLine {
	t.Helper()
	var lines []streamLine
	add := func(ev obs.Event) {
		ev.V = obs.SchemaVersion
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("marshal script event: %v", err)
		}
		lines = append(lines, streamLine{typ: ev.Type, data: b})
	}
	add(obs.Event{Type: obs.TypeRunStart, RunStart: &obs.RunStartEvent{Runner: "MPPT", Policy: "oracle", Mix: "mild"}})
	for i := 0; i < n; i++ {
		add(obs.Event{Type: obs.TypeTick, Tick: &obs.TickEvent{Minute: float64(360 + i), BudgetW: 40, DemandW: 35, OnSolar: true}})
	}
	add(obs.Event{Type: obs.TypeRunEnd, RunEnd: &obs.RunEndEvent{Runner: "MPPT", SolarWh: 100}})
	return lines
}

// fakeStreamNode is a scriptable SSE backend: it serves the scripted
// event sequence on GET /v1/stream, honoring Last-Event-ID, and can be
// told to refuse connections, cut them mid-frame, emit heartbeat
// comments, or end with a terminal SSE error frame.
type fakeStreamNode struct {
	ts      *httptest.Server
	events  []streamLine
	streams atomic.Int32 // /v1/stream connections received
	resume  atomic.Int64 // Last-Event-ID of the most recent connection

	refuse    atomic.Int32 // non-zero: answer with this HTTP status
	cutConns  atomic.Int32 // connections remaining that cut mid-frame
	cutAfterN atomic.Int32 // events each cutting connection delivers first
	hb        atomic.Bool  // emit a keep-alive comment before each event
	errFrame  atomic.Bool  // emit a terminal error frame after one event
}

func (f *fakeStreamNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("GET /v1/stream", func(w http.ResponseWriter, r *http.Request) {
		f.streams.Add(1)
		after, err := client.ParseLastEventID(r.Header.Get(client.HeaderLastEventID))
		if err != nil {
			client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, err.Error())
			return
		}
		f.resume.Store(int64(after))
		if code := int(f.refuse.Load()); code != 0 {
			client.WriteError(w, code, "injected", "injected stream refusal")
			return
		}
		cut := false
		if f.cutConns.Load() > 0 {
			f.cutConns.Add(-1)
			cut = true
		}
		rc := http.NewResponseController(w)
		w.Header().Set("Content-Type", client.ContentTypeSSE)
		w.WriteHeader(http.StatusOK)
		_ = rc.Flush()
		sent := 0
		for i := int(after); i < len(f.events); i++ {
			if cut && sent == int(f.cutAfterN.Load()) {
				// Sever mid-frame: a torn id line with no terminator.
				_, _ = io.WriteString(w, "id: 9")
				_ = rc.Flush()
				return
			}
			if f.hb.Load() {
				_, _ = io.WriteString(w, ": hb\n\n")
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", i+1, f.events[i].typ, f.events[i].data)
			_ = rc.Flush()
			sent++
			if f.errFrame.Load() {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n",
					client.StreamEventError, client.ErrorBody("injected", "run exploded", 0))
				_ = rc.Flush()
				return
			}
		}
	})
	return mux
}

// newStreamFleet starts n scripted SSE nodes sharing one event script
// (a deterministic fleet: every node would produce identical events).
func newStreamFleet(t *testing.T, n, ticks int) ([]*fakeStreamNode, []string, []streamLine) {
	t.Helper()
	script := scriptEvents(t, ticks)
	nodes := make([]*fakeStreamNode, n)
	urls := make([]string, n)
	for i := range nodes {
		f := &fakeStreamNode{events: script}
		f.ts = httptest.NewServer(f.handler())
		t.Cleanup(f.ts.Close)
		nodes[i] = f
		urls[i] = f.ts.URL
	}
	return nodes, urls, script
}

// streamOwnerOrder maps the ring's candidate order for req onto the fleet.
func streamOwnerOrder(rt *Router, nodes []*fakeStreamNode, req client.RunRequest) []*fakeStreamNode {
	idxs := rt.ring.owners(req.Hash(), len(nodes))
	out := make([]*fakeStreamNode, len(idxs))
	for i, idx := range idxs {
		for _, n := range nodes {
			if n.ts.URL == rt.backends[idx].name {
				out[i] = n
			}
		}
	}
	return out
}

// watchThroughGate serves the router on a real listener and collects the
// whole relayed stream through the typed client, returning the events
// delivered before the stream ended and the terminal error (nil for a
// clean EOF).
func watchThroughGate(t *testing.T, rt *Router, req client.StreamRequest) ([]client.StreamEvent, error) {
	t.Helper()
	gate := httptest.NewServer(rt.Handler())
	defer gate.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := client.New(gate.URL).Stream(ctx, req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = st.Close() }()
	var got []client.StreamEvent
	for {
		ev, err := st.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return got, nil
			}
			return got, err
		}
		got = append(got, ev)
	}
}

// checkSequence asserts the identified events are exactly script[from:],
// strictly consecutive ids, byte-identical payloads.
func checkSequence(t *testing.T, got []client.StreamEvent, script []streamLine, from int) {
	t.Helper()
	var ids []client.StreamEvent
	for _, ev := range got {
		if ev.ID > 0 {
			ids = append(ids, ev)
		}
	}
	want := script[from:]
	if len(ids) != len(want) {
		t.Fatalf("got %d identified events, want %d", len(ids), len(want))
	}
	for i, ev := range ids {
		if wantID := uint64(from + i + 1); ev.ID != wantID {
			t.Fatalf("event %d has id %d, want %d (sequence not consecutive)", i, ev.ID, wantID)
		}
		if ev.Type != want[i].typ {
			t.Errorf("event id %d type %q, want %q", ev.ID, ev.Type, want[i].typ)
		}
		if string(ev.Data) != string(want[i].data) {
			t.Errorf("event id %d data %s, want %s", ev.ID, ev.Data, want[i].data)
		}
	}
}

func TestStreamRelayDeliversSequence(t *testing.T) {
	nodes, urls, script := newStreamFleet(t, 2, 4)
	rt := newTestRouter(t, urls, nil)
	req := spec(1)
	order := streamOwnerOrder(rt, nodes, req)

	got, err := watchThroughGate(t, rt, client.StreamRequest{RunRequest: req})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	checkSequence(t, got, script, 0)
	if n := order[0].streams.Load(); n != 1 {
		t.Errorf("owner saw %d stream connections, want 1", n)
	}
	if n := order[1].streams.Load(); n != 0 {
		t.Errorf("non-owner saw %d stream connections, want 0", n)
	}
	snap := rt.Metrics()
	if snap.Counters[MetricStreams] != 1 {
		t.Errorf("%s = %v, want 1", MetricStreams, snap.Counters[MetricStreams])
	}
	if want := float64(len(script)); snap.Counters[MetricStreamEvents] != want {
		t.Errorf("%s = %v, want %v", MetricStreamEvents, snap.Counters[MetricStreamEvents], want)
	}
	if snap.Counters[MetricStreamReconnects] != 0 {
		t.Errorf("%s = %v, want 0", MetricStreamReconnects, snap.Counters[MetricStreamReconnects])
	}
}

func TestStreamRelayResumeFromLastEventID(t *testing.T) {
	nodes, urls, script := newStreamFleet(t, 1, 4)
	rt := newTestRouter(t, urls, nil)
	req := spec(1)

	got, err := watchThroughGate(t, rt, client.StreamRequest{RunRequest: req, LastEventID: 3})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	checkSequence(t, got, script, 3)
	if n := nodes[0].resume.Load(); n != 3 {
		t.Errorf("backend saw Last-Event-ID %d, want 3", n)
	}
}

func TestStreamRelayReconnectsAfterMidStreamCut(t *testing.T) {
	nodes, urls, script := newStreamFleet(t, 1, 6)
	rt := newTestRouter(t, urls, nil)
	req := spec(1)
	nodes[0].cutConns.Store(1)
	nodes[0].cutAfterN.Store(2) // sever after relaying ids 1..2

	got, err := watchThroughGate(t, rt, client.StreamRequest{RunRequest: req})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	// The watcher must see the whole sequence exactly once — no holes, no
	// duplicates — even though the upstream died after two events.
	checkSequence(t, got, script, 0)
	if n := nodes[0].streams.Load(); n != 2 {
		t.Errorf("backend saw %d connections, want 2 (cut + reconnect)", n)
	}
	if n := nodes[0].resume.Load(); n != 2 {
		t.Errorf("reconnect resumed with Last-Event-ID %d, want 2", n)
	}
	if n := rt.Metrics().Counters[MetricStreamReconnects]; n != 1 {
		t.Errorf("%s = %v, want 1", MetricStreamReconnects, n)
	}
}

func TestStreamRelayFailsOverToNextOwner(t *testing.T) {
	nodes, urls, script := newStreamFleet(t, 2, 3)
	rt := newTestRouter(t, urls, nil)
	req := spec(1)
	order := streamOwnerOrder(rt, nodes, req)
	order[0].refuse.Store(http.StatusServiceUnavailable)

	got, err := watchThroughGate(t, rt, client.StreamRequest{RunRequest: req})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	checkSequence(t, got, script, 0)
	if n := order[1].streams.Load(); n != 1 {
		t.Errorf("next owner saw %d connections, want 1", n)
	}
}

func TestStreamRelayHeartbeatsPassThrough(t *testing.T) {
	nodes, urls, script := newStreamFleet(t, 1, 2)
	rt := newTestRouter(t, urls, nil)
	nodes[0].hb.Store(true)

	got, err := watchThroughGate(t, rt, client.StreamRequest{RunRequest: spec(1), Heartbeats: true})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	hbs := 0
	for _, ev := range got {
		if ev.Type == client.TypeHeartbeat {
			hbs++
		}
	}
	if hbs != len(script) {
		t.Errorf("saw %d relayed heartbeats, want %d (one per event)", hbs, len(script))
	}
	checkSequence(t, got, script, 0)
}

func TestStreamRelayErrorFramePassesThrough(t *testing.T) {
	nodes, urls, _ := newStreamFleet(t, 1, 3)
	rt := newTestRouter(t, urls, nil)
	nodes[0].errFrame.Store(true)

	got, err := watchThroughGate(t, rt, client.StreamRequest{RunRequest: spec(1)})
	if err == nil {
		t.Fatal("watch succeeded, want relayed error frame")
	}
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error = %v, want *client.APIError", err)
	}
	if ae.Code != "injected" || ae.Status != 0 {
		t.Errorf("relayed error = code %q status %d, want %q/0", ae.Code, ae.Status, "injected")
	}
	if len(got) != 1 {
		t.Errorf("got %d events before the error, want 1", len(got))
	}
	// A run failure is a definite answer: the relay must not retry it.
	if n := nodes[0].streams.Load(); n != 1 {
		t.Errorf("backend saw %d connections, want 1 (no retry on error frame)", n)
	}
}

func TestStreamRelayReconnectBudgetExhausted(t *testing.T) {
	nodes, urls, _ := newStreamFleet(t, 1, 8)
	rt := newTestRouter(t, urls, nil) // MaxRetries defaults to 2
	nodes[0].cutConns.Store(100)      // every connection cuts
	nodes[0].cutAfterN.Store(1)       // after one fresh event each

	got, err := watchThroughGate(t, rt, client.StreamRequest{RunRequest: spec(1)})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error = %v, want terminal *client.APIError after budget", err)
	}
	if ae.Code != client.CodeUnreachable || ae.Status != 0 {
		t.Errorf("terminal error = code %q status %d, want %q/0", ae.Code, ae.Status, client.CodeUnreachable)
	}
	// 1 + MaxRetries connections, each contributing one fresh event.
	if n := nodes[0].streams.Load(); n != 3 {
		t.Errorf("backend saw %d connections, want 3", n)
	}
	if len(got) != 3 {
		t.Errorf("got %d events before giving up, want 3", len(got))
	}
	if n := rt.Metrics().Counters[MetricStreamReconnects]; n != 2 {
		t.Errorf("%s = %v, want 2", MetricStreamReconnects, n)
	}
}

func TestStreamRelayValidation(t *testing.T) {
	_, urls, _ := newStreamFleet(t, 1, 1)
	rt := newTestRouter(t, urls, nil)
	cases := []struct {
		name, target, lastID string
		wantCode             string
	}{
		{"missing spec", "/v1/stream", "", client.CodeBadRequest},
		{"unknown field", "/v1/stream?spec=%7B%22v%22%3A1%2C%22bogus%22%3A1%7D", "", client.CodeBadRequest},
		{"bad version", "/v1/stream?spec=%7B%22v%22%3A9%2C%22step_min%22%3A8%7D", "", client.CodeUnsupportedVersion},
		{"invalid spec", "/v1/stream?spec=%7B%22v%22%3A1%2C%22day%22%3A-3%7D", "", client.CodeBadRequest},
		{"bad last-event-id", "/v1/stream?spec=%7B%22v%22%3A1%2C%22step_min%22%3A8%7D", "nope", client.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := httptest.NewRequest(http.MethodGet, tc.target, nil)
			if tc.lastID != "" {
				r.Header.Set(client.HeaderLastEventID, tc.lastID)
			}
			rec := httptest.NewRecorder()
			rt.Handler().ServeHTTP(rec, r)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", rec.Code, rec.Body)
			}
			if e := client.DecodeError(rec.Code, rec.Header(), rec.Body.Bytes()); e.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", e.Code, tc.wantCode)
			}
		})
	}

	rt.StartDrain()
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stream?spec=%7B%22v%22%3A1%2C%22step_min%22%3A8%7D", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", rec.Code)
	}
}

func TestStreamRelayNoBackends(t *testing.T) {
	_, urls, _ := newStreamFleet(t, 1, 1)
	rt := newTestRouter(t, urls, nil)
	rt.backends[0].healthy.Store(false)

	gate := httptest.NewServer(rt.Handler())
	defer gate.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := client.New(gate.URL).Stream(ctx, client.StreamRequest{RunRequest: spec(1)})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error = %v, want *client.APIError", err)
	}
	if ae.Code != client.CodeNoBackends || ae.Status != http.StatusServiceUnavailable {
		t.Errorf("error = code %q status %d, want %q/503", ae.Code, ae.Status, client.CodeNoBackends)
	}
}
