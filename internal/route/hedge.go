package route

import (
	"sort"
	"sync"
	"time"
)

// latWindow keeps the most recent upstream latencies (successful
// attempts only) in a fixed ring, so the router can derive its hedge
// delay from the fleet's live p95 instead of a guessed constant. All
// methods are safe for concurrent use; the window is small enough that
// copying it out for a percentile is cheap.
type latWindow struct {
	mu  sync.Mutex
	buf []float64 // ms
	n   int       // total observations ever
	pos int
}

// latWindowSize is how many samples the p95 looks back over.
const latWindowSize = 512

// latMinSamples is the observation count below which the window refuses
// to estimate: with too few samples the p95 is noise, and hedging on
// noise doubles load for nothing.
const latMinSamples = 16

func newLatWindow() *latWindow {
	return &latWindow{buf: make([]float64, 0, latWindowSize)}
}

// add records one latency in milliseconds.
func (w *latWindow) add(ms float64) {
	w.mu.Lock()
	if len(w.buf) < latWindowSize {
		w.buf = append(w.buf, ms)
	} else {
		w.buf[w.pos] = ms
		w.pos = (w.pos + 1) % latWindowSize
	}
	w.n++
	w.mu.Unlock()
}

// p95 returns the 95th-percentile latency of the window and true, or 0
// and false while fewer than latMinSamples observations exist.
func (w *latWindow) p95() (float64, bool) {
	w.mu.Lock()
	if w.n < latMinSamples {
		w.mu.Unlock()
		return 0, false
	}
	s := append([]float64(nil), w.buf...)
	w.mu.Unlock()
	sort.Float64s(s)
	idx := int(0.95*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx], true
}

// hedgeDelay resolves the delay before a request is hedged to the next
// ring owner: a fixed Config.HedgeDelay when set, otherwise the live
// p95 clamped to [HedgeMin, HedgeMax]. Before enough samples exist the
// router hedges late (HedgeMax) rather than early — a cold fleet must
// not double its own warm-up load.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeDelay > 0 {
		return rt.cfg.HedgeDelay
	}
	p95, ok := rt.lat.p95()
	if !ok {
		return rt.cfg.HedgeMax
	}
	d := time.Duration(p95 * float64(time.Millisecond))
	if d < rt.cfg.HedgeMin {
		d = rt.cfg.HedgeMin
	}
	if d > rt.cfg.HedgeMax {
		d = rt.cfg.HedgeMax
	}
	return d
}
