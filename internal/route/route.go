// Package route is solargate's fleet-routing core: the solard wire API
// (solarcore/client) spread across N solard backends by one stdlib-only
// HTTP coordinator. The paper's SolarCore allocator divides one solar
// budget across cores; this package applies the same divide-route-merge
// shape one level up, across simulation nodes (DESIGN.md §15):
//
//   - consistent hashing — RunSpec.Hash() maps each spec to a backend
//     through a virtual-node hash ring, so identical specs always land
//     on the same node and the fleet's result caches partition the key
//     space instead of duplicating it;
//   - hedging — a request still unanswered after a p95-derived delay is
//     raced against the next ring owner; the first response wins and
//     the loser's context is canceled;
//   - retries — 429/5xx and transport failures fail over to the next
//     distinct owner with capped exponential backoff, honoring the
//     upstream's Retry-After hint;
//   - health — backends are probed via /healthz; consecutive failures
//     eject a backend from routing, a later success re-admits it;
//   - merge — /v1/sweep batches fan out as per-cell /v1/run requests to
//     their owning shards (order preserved), and /metrics aggregates
//     every node's registry snapshot through obs.MergeSnapshots.
//
// Like internal/serve, the package reads no wall clock of its own:
// Config.Clock injects one (cmd/solargate passes time.Now), and without
// it latency-derived behavior degrades to conservative constants.
package route

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"solarcore/client"
	"solarcore/internal/obs"
)

// Router metric names, exported by the fleet-wide /metrics (merged into
// the backends' serve_* counters).
const (
	// MetricRequests counts completed HTTP requests across all routes.
	MetricRequests = "route_requests_total"
	// MetricHedges counts hedge attempts launched.
	MetricHedges = "route_hedges_total"
	// MetricHedgeWins counts requests won by the hedged attempt.
	MetricHedgeWins = "route_hedge_wins_total"
	// MetricRetries counts fail-over retry attempts launched.
	MetricRetries = "route_retries_total"
	// MetricEjections counts backends ejected by failed health probes.
	MetricEjections = "route_ejections_total"
	// MetricReadmissions counts ejected backends re-admitted by a
	// passing probe.
	MetricReadmissions = "route_readmissions_total"
	// MetricPanics counts handler panics contained by the middleware.
	MetricPanics = "route_panics_total"
	// MetricStreams counts /v1/stream relays committed to a watcher.
	MetricStreams = "route_streams_total"
	// MetricStreamEvents counts identified SSE events relayed downstream
	// (heartbeats and gap frames carry no id and are not counted).
	MetricStreamEvents = "route_stream_events_total"
	// MetricStreamReconnects counts mid-stream fail-overs to another
	// backend connection with a Last-Event-ID resume.
	MetricStreamReconnects = "route_stream_reconnects_total"
	// MetricUpstreamMs is a histogram of successful upstream attempt
	// latencies in milliseconds (zero without a Config.Clock).
	MetricUpstreamMs = "route_upstream_ms"
	// MetricBackendsHealthy gauges backends currently in routing.
	MetricBackendsHealthy = "route_backends_healthy"
)

// ErrNoBackends means no healthy backend exists for a request.
var ErrNoBackends = errors.New("route: no healthy backend")

// Config tunes a Router. Backends is required; every other zero field
// materializes a documented default.
type Config struct {
	// Backends are the solard base URLs (http://host:port). At least one
	// is required; duplicates are rejected.
	Backends []string
	// VNodes is the virtual-node count per backend on the hash ring
	// (default 64). More vnodes smooth the key split at the cost of ring
	// size; 64 keeps per-backend shares within a few percent of even.
	VNodes int
	// HedgeDelay, when positive, fixes the delay before a slow request
	// is hedged to the next ring owner. Zero selects the adaptive delay:
	// the live p95 of upstream latencies clamped to [HedgeMin, HedgeMax].
	HedgeDelay time.Duration
	// HedgeMin / HedgeMax clamp the adaptive hedge delay
	// (defaults 25ms / 500ms).
	HedgeMin time.Duration
	HedgeMax time.Duration
	// MaxRetries bounds fail-over retry attempts per request beyond the
	// first (default 2).
	MaxRetries int
	// BackoffBase / BackoffCap shape the capped exponential retry
	// backoff (defaults 25ms / 1s); an upstream Retry-After above the
	// computed backoff is honored up to BackoffCap.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// ProbeInterval is the health-check period (default 500ms);
	// ProbeTimeout bounds one probe (default ProbeInterval).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// ProbeJitter spreads each probe period uniformly over
	// ProbeInterval·[1−j, 1+j] (default 0.2, capped at 0.9; negative
	// pins the period exactly — tests use that) so a fleet of routers
	// restarted together does not probe every backend in lockstep
	// forever. Jitter draws from a rand seeded by Seed — fully
	// deterministic, like everything else in this repository.
	ProbeJitter float64
	// Seed feeds the router's internal randomness (probe jitter); the
	// default 1 matches the repo-wide seeded-rand convention.
	Seed int64
	// CheckpointDir, when non-empty, makes /v1/sweep durable: each
	// completed cell is appended to a per-sweep journal in this
	// directory, and an identical sweep re-submitted after a crash
	// restores finished cells from the journal (Cache disposition
	// obs.CacheCheckpoint) instead of re-fetching them. The journal is
	// deleted once every cell of a sweep has succeeded.
	CheckpointDir string
	// FailThreshold is how many consecutive probe failures eject a
	// backend (default 3).
	FailThreshold int
	// MaxSweep caps the runs accepted in one /v1/sweep batch (default 256).
	MaxSweep int
	// SweepWorkers bounds concurrent per-cell fan-out requests per sweep
	// (default 4 per backend).
	SweepWorkers int
	// Registry receives the route_* metrics; nil builds a private one.
	Registry *obs.Registry
	// AccessLog, when non-nil, receives one obs.AccessEvent JSON line
	// per completed request.
	AccessLog *obs.JSONLSink
	// Clock supplies wall time for latency metrics, the adaptive hedge
	// window and access-log durations. nil is valid — durations report
	// zero and hedging falls back to HedgeMax — because internal
	// packages must not read the wall clock themselves (solarvet's
	// seededrand rule); cmd/solargate injects time.Now.
	Clock func() time.Time
	// HTTPClient overrides the upstream transport (tests inject fakes);
	// nil uses the client package's shared keep-alive pool.
	HTTPClient *http.Client
}

// withDefaults returns cfg with every zero field materialized.
func (c Config) withDefaults() Config {
	if c.VNodes < 1 {
		c.VNodes = 64
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 25 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 500 * time.Millisecond
	}
	if c.HedgeMax < c.HedgeMin {
		c.HedgeMax = c.HedgeMin
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.FailThreshold < 1 {
		c.FailThreshold = 3
	}
	if c.ProbeJitter == 0 {
		c.ProbeJitter = 0.2
	}
	if c.ProbeJitter < 0 {
		c.ProbeJitter = 0
	}
	if c.ProbeJitter > 0.9 {
		c.ProbeJitter = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxSweep < 1 {
		c.MaxSweep = 256
	}
	if c.SweepWorkers < 1 {
		c.SweepWorkers = 4 * len(c.Backends)
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = func() time.Time { return time.Time{} }
	}
	return c
}

// backend is one solard node: its typed client plus live health state.
type backend struct {
	name    string // base URL, the ring identity
	cli     *client.Client
	healthy atomic.Bool
	fails   atomic.Int32 // consecutive probe failures
}

// Router is the fleet coordinator. Build one with New, launch the
// health prober with Start, mount Handler on an http.Server, and on
// shutdown call StartDrain, drain the listener, then Close.
type Router struct {
	cfg       Config
	reg       *obs.Registry
	ring      *ring
	backends  []*backend
	lat       *latWindow
	probeRand *rand.Rand // jitter source; owned by the probeLoop goroutine

	draining  atomic.Bool
	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup

	mux *http.ServeMux
}

// New builds a Router over cfg. Backends start healthy (optimistic —
// the first probe round corrects within ProbeInterval).
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("route: at least one backend is required")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:       cfg,
		reg:       cfg.Registry,
		lat:       newLatWindow(),
		probeRand: rand.New(rand.NewSource(cfg.Seed)),
		done:      make(chan struct{}),
	}
	seen := map[string]bool{}
	names := make([]string, 0, len(cfg.Backends))
	for _, raw := range cfg.Backends {
		name := normalizeBackend(raw)
		if name == "" {
			return nil, fmt.Errorf("route: empty backend URL in %q", raw)
		}
		if seen[name] {
			return nil, fmt.Errorf("route: duplicate backend %q", name)
		}
		seen[name] = true
		names = append(names, name)
		var opts []client.Option
		if cfg.HTTPClient != nil {
			opts = append(opts, client.WithHTTPClient(cfg.HTTPClient))
		}
		b := &backend{name: name, cli: client.New(name, opts...)}
		b.healthy.Store(true)
		rt.backends = append(rt.backends, b)
	}
	rt.ring = buildRing(names, cfg.VNodes)
	rt.setHealthyGauge()

	rt.mux = http.NewServeMux()
	rt.mux.Handle("POST /v1/run", rt.instrument("/v1/run", rt.handleRun))
	rt.mux.Handle("POST /v1/sweep", rt.instrument("/v1/sweep", rt.handleSweep))
	rt.mux.Handle("GET /v1/stream", rt.instrument("/v1/stream", rt.handleStream))
	rt.mux.Handle("GET /v1/policies", rt.instrument("/v1/policies", rt.handlePolicies))
	rt.mux.Handle("GET /metrics", rt.instrument("/metrics", rt.handleMetrics))
	rt.mux.Handle("GET /healthz", rt.instrument("/healthz", rt.handleHealthz))
	return rt, nil
}

// normalizeBackend trims a trailing slash so ring identity and client
// base agree however the URL was written.
func normalizeBackend(raw string) string {
	for len(raw) > 0 && raw[len(raw)-1] == '/' {
		raw = raw[:len(raw)-1]
	}
	return raw
}

// Handler returns the route table, panic-contained and instrumented.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Metrics snapshots the router's own registry (the fleet-wide merge is
// served by /metrics).
func (rt *Router) Metrics() obs.Snapshot { return rt.reg.Snapshot() }

// Start launches the health prober under ctx; it stops when ctx dies or
// Close is called. Call at most once.
func (rt *Router) Start(ctx context.Context) {
	rt.wg.Add(1)
	go rt.probeLoop(ctx)
}

// StartDrain moves the router into its draining state: /healthz starts
// failing and new work is refused; in-flight requests keep running.
func (rt *Router) StartDrain() { rt.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// Close stops the health prober and flushes the access log. Call it
// after the HTTP listener has drained.
func (rt *Router) Close() error {
	rt.closeOnce.Do(func() { close(rt.done) })
	rt.wg.Wait()
	if rt.cfg.AccessLog != nil {
		return rt.cfg.AccessLog.Flush()
	}
	return nil
}

// Healthy returns how many backends are currently in routing.
func (rt *Router) Healthy() int {
	n := 0
	for _, b := range rt.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// setHealthyGauge mirrors the healthy-backend count into the registry
// (single Set site for the gauge).
func (rt *Router) setHealthyGauge() {
	rt.reg.Set(MetricBackendsHealthy, float64(rt.Healthy()))
}

// probeLoop drives the eject/re-admit state machine, one round per
// jittered ProbeInterval. probeRand is owned by this goroutine alone.
func (rt *Router) probeLoop(ctx context.Context) {
	defer rt.wg.Done()
	t := time.NewTimer(rt.nextProbeDelay())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-rt.done:
			return
		case <-t.C:
			rt.probeAll(ctx)
			t.Reset(rt.nextProbeDelay())
		}
	}
}

// nextProbeDelay draws one probe period: ProbeInterval spread uniformly
// over [1−ProbeJitter, 1+ProbeJitter]. The draw is deterministic in
// Config.Seed; only probeLoop (or a test that never starts the prober)
// may call it.
func (rt *Router) nextProbeDelay() time.Duration {
	j := rt.cfg.ProbeJitter
	if j <= 0 {
		return rt.cfg.ProbeInterval
	}
	f := 1 + j*(2*rt.probeRand.Float64()-1)
	return time.Duration(f * float64(rt.cfg.ProbeInterval))
}

// probeAll probes every backend once. A passing probe clears the
// failure streak and re-admits an ejected backend; FailThreshold
// consecutive failures eject a serving one.
func (rt *Router) probeAll(ctx context.Context) {
	changed := false
	for _, b := range rt.backends {
		pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
		err := b.cli.Healthz(pctx)
		cancel()
		if err == nil {
			b.fails.Store(0)
			if !b.healthy.Swap(true) {
				rt.reg.Add(MetricReadmissions, 1)
				changed = true
			}
			continue
		}
		if b.fails.Add(1) >= int32(rt.cfg.FailThreshold) && b.healthy.Swap(false) {
			rt.reg.Add(MetricEjections, 1)
			changed = true
		}
	}
	if changed {
		rt.setHealthyGauge()
	}
}

// ownersFor resolves the key's candidate backends: the ring's distinct
// owner order with ejected backends filtered out. An empty result means
// the whole fleet is unhealthy.
func (rt *Router) ownersFor(key string) []*backend {
	idxs := rt.ring.owners(key, len(rt.backends))
	out := make([]*backend, 0, len(idxs))
	for _, i := range idxs {
		if rt.backends[i].healthy.Load() {
			out = append(out, rt.backends[i])
		}
	}
	return out
}

// healthyBackends returns the healthy backends in declaration order
// (for endpoints that are not key-addressed: policies, metrics).
func (rt *Router) healthyBackends() []*backend {
	out := make([]*backend, 0, len(rt.backends))
	for _, b := range rt.backends {
		if b.healthy.Load() {
			out = append(out, b)
		}
	}
	return out
}
