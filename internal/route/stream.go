package route

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"solarcore/client"
)

// errWatcherGone marks the downstream watcher disconnecting mid-relay;
// the relay stops quietly (nothing left to write to).
var errWatcherGone = errors.New("route: stream watcher gone")

// handleStream serves GET /v1/stream: the same SSE contract as solard's,
// relayed from the spec's owning shard. Validation happens once at the
// edge (exactly like /v1/run), then the gate attaches to the backend's
// feed and pumps frames through with per-event flushes. If the backend
// dies mid-stream the gate reconnects — to the next ring owner if the
// node was ejected — resuming with Last-Event-ID set to the last id it
// relayed, so the watcher sees one continuous, gapless sequence across
// the fail-over (deterministic re-simulation on the new owner produces
// identical events with identical sequence numbers).
func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeDraining(w)
		return
	}
	specParam := r.URL.Query().Get("spec")
	if specParam == "" {
		client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, "missing spec query parameter")
		return
	}
	var req client.RunRequest
	if err := client.UnmarshalStrict([]byte(specParam), &req); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, err.Error())
		return
	}
	if err := client.CheckWireVersion(req.V); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeUnsupportedVersion, err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, err.Error())
		return
	}
	after, err := client.ParseLastEventID(r.Header.Get(client.HeaderLastEventID))
	if err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, err.Error())
		return
	}
	rt.relayStream(w, r, req, after)
}

// relayStream drives the relay loop: connect to an owner, pump until the
// feed ends, and on a retryable upstream failure reconnect with the
// updated resume cursor. Before the SSE response is committed, failures
// surface as ordinary HTTP error envelopes; after commitment only a
// terminal SSE error frame can report them.
func (rt *Router) relayStream(w http.ResponseWriter, r *http.Request, req client.RunRequest, after uint64) {
	rc := http.NewResponseController(w)
	key := req.Hash()
	lastID := after
	committed := false
	reconnects := 0
	for {
		owners := rt.ownersFor(key)
		if len(owners) == 0 {
			rt.relayFail(w, rc, committed, ErrNoBackends)
			return
		}
		var st *client.Stream
		var src *backend
		var lastErr error
		for _, b := range owners {
			s, err := b.cli.Stream(r.Context(), client.StreamRequest{
				RunRequest:  req,
				LastEventID: lastID,
				Heartbeats:  true, // relay upstream keep-alives to our watcher
			})
			if err != nil {
				if !retryableStreamErr(err) {
					// The backend answered with a definite refusal (bad spec,
					// unsupported version, …): relay its envelope verbatim.
					rt.relayFail(w, rc, committed, err)
					return
				}
				lastErr = err
				continue
			}
			st, src = s, b
			break
		}
		if st == nil {
			if lastErr == nil {
				lastErr = ErrNoBackends
			}
			rt.relayFail(w, rc, committed, lastErr)
			return
		}
		if !committed {
			h := w.Header()
			h.Set("Content-Type", client.ContentTypeSSE)
			h.Set("Cache-Control", "no-store")
			h.Set(client.HeaderBackend, src.name)
			w.WriteHeader(http.StatusOK)
			_ = rc.Flush()
			committed = true
			rt.reg.Add(MetricStreams, 1)
		}
		err := rt.pumpStream(w, rc, st, &lastID)
		_ = st.Close()
		switch {
		case err == nil:
			return // clean end of stream, relayed in full
		case errors.Is(err, errWatcherGone) || r.Context().Err() != nil:
			return // our watcher hung up; nothing left to tell it
		case retryableStreamErr(err) && reconnects < rt.cfg.MaxRetries:
			// The upstream died mid-stream (partition, crash, ejection):
			// reconnect, resuming strictly after the last relayed id.
			reconnects++
			rt.reg.Add(MetricStreamReconnects, 1)
		default:
			rt.relayFail(w, rc, committed, err)
			return
		}
	}
}

// pumpStream relays one upstream connection's frames until it ends:
// heartbeat comments pass through as comments, event frames byte-for-
// byte with their ids, each flushed immediately. Frames at or below the
// resume cursor are dropped — a conservative upstream that replays from
// earlier than asked must not produce duplicates downstream. Returns nil
// on clean upstream EOF.
func (rt *Router) pumpStream(w http.ResponseWriter, rc *http.ResponseController, st *client.Stream, lastID *uint64) error {
	for {
		ev, err := st.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if ev.ID > 0 && ev.ID <= *lastID {
			continue
		}
		var buf bytes.Buffer
		if ev.Type == client.TypeHeartbeat {
			buf.WriteString(": hb\n\n")
		} else {
			if ev.ID > 0 {
				fmt.Fprintf(&buf, "id: %d\n", ev.ID)
			}
			fmt.Fprintf(&buf, "event: %s\ndata: %s\n\n", ev.Type, ev.Data)
		}
		if _, werr := w.Write(buf.Bytes()); werr != nil {
			return errWatcherGone
		}
		_ = rc.Flush()
		if ev.ID > 0 {
			*lastID = ev.ID
			rt.reg.Add(MetricStreamEvents, 1)
		}
	}
}

// relayFail reports a relay failure in whichever channel is still open:
// the ordinary HTTP error envelope before the SSE response is committed,
// a terminal SSE error frame after.
func (rt *Router) relayFail(w http.ResponseWriter, rc *http.ResponseController, committed bool, err error) {
	if !committed {
		rt.writeFetchError(w, err)
		return
	}
	code, msg, retryMs := client.CodeUnreachable, err.Error(), int64(0)
	var ae *client.APIError
	if errors.As(err, &ae) {
		code, msg = ae.Code, ae.Message
		retryMs = ae.RetryAfter.Milliseconds()
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "event: %s\ndata: %s\n\n", client.StreamEventError, client.ErrorBody(code, msg, retryMs))
	_, _ = w.Write(buf.Bytes())
	_ = rc.Flush()
}

// retryableStreamErr reports whether a stream failure may be cured by
// another owner or a fresh connection: transport faults, mid-frame
// truncation, and 429/5xx refusals. Definite answers — 4xx envelopes
// and mid-stream SSE error frames (Status 0: the run itself failed) —
// are terminal and relayed instead.
func retryableStreamErr(err error) bool {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ue *url.Error
	return errors.As(err, &ue)
}
