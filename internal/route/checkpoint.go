package route

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"solarcore/client"
	"solarcore/internal/obs"
)

// Sweep checkpointing (DESIGN.md §16). A fleet sweep can run for
// minutes; when solargate dies mid-batch every completed cell is lost
// and the client's retry recomputes the whole grid. With
// Config.CheckpointDir set, each successfully completed cell is
// appended — one JSON line, write(2)-atomic at these sizes — to a
// journal named by the sweep's identity (the hash of its cell hashes,
// so an identical re-submitted batch finds it and a different batch
// cannot). On resume, journal lines fill their cells up front and only
// the missing cells are fetched; a torn tail line (the crash can land
// mid-write) invalidates only itself. The journal is deleted when every
// cell of a sweep has succeeded, so the directory holds only sweeps
// that still have work to lose.

// ckptLine is one journal line: a cell index and its finished item.
type ckptLine struct {
	I    int              `json:"i"`
	Item client.SweepItem `json:"item"`
}

// sweepID names a sweep by content: the hex SHA-256 over its cell
// hashes in order. Order matters — the journal records indices.
func sweepID(runs []client.RunRequest) string {
	h := sha256.New()
	for _, r := range runs {
		h.Write([]byte(r.Hash()))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// checkpoint is one sweep's open journal. record is called from the
// sweep worker goroutines; the mutex serializes appends.
type checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// openCheckpoint loads (or starts) the journal for a sweep, restoring
// finished cells into items/done. Checkpointing is strictly best
// effort: any filesystem failure returns a nil checkpoint and the sweep
// proceeds un-journaled rather than failing.
func (rt *Router) openCheckpoint(id string, items []client.SweepItem, done []bool) *checkpoint {
	if err := os.MkdirAll(rt.cfg.CheckpointDir, 0o755); err != nil {
		return nil
	}
	path := filepath.Join(rt.cfg.CheckpointDir, id+".ckpt")
	if raw, err := os.ReadFile(path); err == nil {
		restoreCheckpoint(raw, items, done)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil
	}
	return &checkpoint{f: f, path: path}
}

// restoreCheckpoint replays journal bytes into the sweep's item slots.
// Restored cells are marked obs.CacheCheckpoint so callers can see the
// resume; a malformed line (the torn tail of a crash) stops the replay
// — everything after it is refetched, which is always correct.
func restoreCheckpoint(raw []byte, items []client.SweepItem, done []bool) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var line ckptLine
		if err := dec.Decode(&line); err != nil {
			return
		}
		if line.I < 0 || line.I >= len(items) || line.Item.Error != "" {
			continue
		}
		items[line.I] = line.Item
		items[line.I].Cache = obs.CacheCheckpoint
		done[line.I] = true
	}
}

// record appends one finished cell. Failed cells are not recorded —
// a resume should retry them.
func (c *checkpoint) record(i int, item client.SweepItem) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// One line per cell; an append either lands whole or becomes the
	// torn tail the reader already tolerates.
	_ = json.NewEncoder(c.f).Encode(ckptLine{I: i, Item: item})
}

// finish closes the journal, deleting it when the sweep fully
// succeeded (complete is true) so finished sweeps leave nothing behind.
func (c *checkpoint) finish(complete bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.f.Close()
	if complete {
		_ = os.Remove(c.path)
	}
}
