package route

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"solarcore/client"
	"solarcore/internal/obs"
)

// postSweep sends a sweep through the router's handler and decodes it.
func postSweep(t *testing.T, rt *Router, req client.SweepRequest) (*httptest.ResponseRecorder, client.SweepResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body)))
	var sr client.SweepResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
			t.Fatalf("decode sweep response: %v", err)
		}
	}
	return rec, sr
}

func ckptPath(rt *Router, runs []client.RunRequest) string {
	return filepath.Join(rt.cfg.CheckpointDir, sweepID(runs)+".ckpt")
}

// TestSweepCheckpointResume is the crash-resume contract: cells already
// journaled by a previous (killed) attempt are restored, only the
// missing cells hit the fleet, and a fully successful sweep deletes its
// journal.
func TestSweepCheckpointResume(t *testing.T) {
	nodes, urls := newFleet(t, 1)
	dir := t.TempDir()
	rt := newTestRouter(t, urls, func(c *Config) { c.CheckpointDir = dir })
	runs := []client.RunRequest{spec(0), spec(1), spec(2)}

	// A previous attempt finished cells 0 and 2, then died: write the
	// journal it would have left behind.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, i := range []int{0, 2} {
		if err := enc.Encode(ckptLine{I: i, Item: client.SweepItem{
			Hash: runs[i].Hash(), Cache: obs.CacheHit,
			Result: json.RawMessage(`{"from":"journal"}`),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(ckptPath(rt, runs), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	rec, sr := postSweep(t, rt, client.SweepRequest{Runs: runs})
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status = %d: %s", rec.Code, rec.Body)
	}
	if got := nodes[0].runs.Load(); got != 1 {
		t.Errorf("backend saw %d runs, want 1 (cells 0 and 2 restored)", got)
	}
	for _, i := range []int{0, 2} {
		if sr.Results[i].Cache != obs.CacheCheckpoint {
			t.Errorf("cell %d Cache = %q, want %q", i, sr.Results[i].Cache, obs.CacheCheckpoint)
		}
		if string(sr.Results[i].Result) != `{"from":"journal"}` {
			t.Errorf("cell %d body = %s, want the journaled bytes", i, sr.Results[i].Result)
		}
	}
	if sr.Results[1].Error != "" || sr.Results[1].Cache == obs.CacheCheckpoint {
		t.Errorf("cell 1 = %+v, want a fresh fetch", sr.Results[1])
	}
	if _, err := os.Stat(ckptPath(rt, runs)); !errors.Is(err, os.ErrNotExist) {
		t.Error("journal survived a fully successful sweep")
	}
}

// TestSweepJournalSurvivesFailure pins the other half: a sweep with
// failed cells keeps its journal (holding the cells that DID succeed)
// and a retry after the fault clears completes from it.
func TestSweepJournalSurvivesFailure(t *testing.T) {
	nodes, urls := newFleet(t, 1)
	dir := t.TempDir()
	rt := newTestRouter(t, urls, func(c *Config) {
		c.CheckpointDir = dir
		c.MaxRetries = -1 // no fail-over: one node, one attempt
	})
	runs := []client.RunRequest{spec(0), spec(1)}

	nodes[0].failCode.Store(http.StatusInternalServerError)
	rec, sr := postSweep(t, rt, client.SweepRequest{Runs: runs})
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status = %d", rec.Code)
	}
	for i, item := range sr.Results {
		if item.Error == "" {
			t.Errorf("cell %d succeeded against a failing node", i)
		}
	}
	if _, err := os.Stat(ckptPath(rt, runs)); err != nil {
		t.Fatalf("journal missing after a failed sweep: %v", err)
	}

	nodes[0].failCode.Store(0)
	rec, sr = postSweep(t, rt, client.SweepRequest{Runs: runs})
	if rec.Code != http.StatusOK {
		t.Fatalf("retry status = %d", rec.Code)
	}
	for i, item := range sr.Results {
		if item.Error != "" {
			t.Errorf("retry cell %d still failing: %s", i, item.Error)
		}
	}
	if _, err := os.Stat(ckptPath(rt, runs)); !errors.Is(err, os.ErrNotExist) {
		t.Error("journal survived the successful retry")
	}
}

// TestRestoreCheckpointTornTail pins the journal reader's degradation:
// a torn tail line (crash mid-append) invalidates only itself.
func TestRestoreCheckpointTornTail(t *testing.T) {
	runs := []client.RunRequest{spec(0), spec(1)}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(ckptLine{I: 0, Item: client.SweepItem{Hash: runs[0].Hash(), Result: json.RawMessage(`{}`)}}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"i":1,"item":{"hash":`) // the crash landed here

	items := make([]client.SweepItem, 2)
	done := make([]bool, 2)
	restoreCheckpoint(buf.Bytes(), items, done)
	if !done[0] || items[0].Cache != obs.CacheCheckpoint {
		t.Errorf("intact line not restored: %+v", items[0])
	}
	if done[1] {
		t.Error("torn line marked done")
	}

	// Out-of-range and failed lines are skipped, not trusted.
	var buf2 bytes.Buffer
	enc = json.NewEncoder(&buf2)
	_ = enc.Encode(ckptLine{I: 99, Item: client.SweepItem{}})
	_ = enc.Encode(ckptLine{I: 1, Item: client.SweepItem{Error: "failed last time"}})
	items = make([]client.SweepItem, 2)
	done = make([]bool, 2)
	restoreCheckpoint(buf2.Bytes(), items, done)
	if done[0] || done[1] {
		t.Errorf("bogus lines restored: %v", done)
	}
}

// TestProbeJitterBounds pins the jitter contract: every drawn period
// stays inside ProbeInterval·[1−j, 1+j], the draw is deterministic in
// the seed, and a negative jitter pins the period exactly.
func TestProbeJitterBounds(t *testing.T) {
	_, urls := newFleet(t, 1)
	const interval = 100 * time.Millisecond
	rt := newTestRouter(t, urls, func(c *Config) {
		c.ProbeInterval = interval
		c.ProbeJitter = 0.2
		c.Seed = 42
	})
	lo, hi := 80*time.Millisecond, 120*time.Millisecond
	distinct := map[time.Duration]bool{}
	var first []time.Duration
	for i := 0; i < 200; i++ {
		d := rt.nextProbeDelay()
		if d < lo || d > hi {
			t.Fatalf("draw %d = %v outside [%v, %v]", i, d, lo, hi)
		}
		distinct[d] = true
		first = append(first, d)
	}
	if len(distinct) < 10 {
		t.Errorf("only %d distinct periods in 200 draws; jitter is not spreading", len(distinct))
	}

	// Same seed, same sequence: restarts behave reproducibly.
	rt2 := newTestRouter(t, urls, func(c *Config) {
		c.ProbeInterval = interval
		c.ProbeJitter = 0.2
		c.Seed = 42
	})
	for i, want := range first[:50] {
		if got := rt2.nextProbeDelay(); got != want {
			t.Fatalf("draw %d = %v, want %v (seed determinism)", i, got, want)
		}
	}

	// Negative jitter disables spreading (tests pin exact cadence).
	rt3 := newTestRouter(t, urls, func(c *Config) {
		c.ProbeInterval = interval
		c.ProbeJitter = -1
	})
	for i := 0; i < 10; i++ {
		if got := rt3.nextProbeDelay(); got != interval {
			t.Fatalf("pinned draw = %v, want exactly %v", got, interval)
		}
	}
}

// TestIntegrityFailureFailsOver pins the anti-corruption path end to
// end: a backend whose response body fails its checksum is treated as a
// transport failure and the request fails over to the next owner — the
// client never sees a corrupt 200.
func TestIntegrityFailureFailsOver(t *testing.T) {
	if !retryable(&client.IntegrityError{Got: "a", Want: "b"}) {
		t.Fatal("IntegrityError not retryable; fail-over would surface corrupt deliveries")
	}
	nodes, urls := newFleet(t, 2)
	rt := newTestRouter(t, urls, nil)
	req := spec(7)
	owners := ownerOrder(rt, nodes, req)
	owners[0].badSum.Store(true)

	rec := postRun(t, rt, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(client.HeaderRoute); got != client.RouteRetried {
		t.Errorf("%s = %q, want %q", client.HeaderRoute, got, client.RouteRetried)
	}
	if got := rec.Header().Get(client.HeaderBackend); got != owners[1].url() {
		t.Errorf("winning backend = %q, want the second owner %q", got, owners[1].url())
	}
	if err := client.CheckBodySum(rec.Header().Get(client.HeaderBodySum), rec.Body.Bytes()); err != nil {
		t.Errorf("gate response sum does not verify: %v", err)
	}
}
