package solarcore

import (
	"context"
	"errors"
	"fmt"
	"io"

	"solarcore/internal/obs"
	"solarcore/internal/sched"
	"solarcore/internal/sim"
)

// ErrUnknownPolicy reports a policy name outside the Table 6 set. Every
// name-resolving entry point (NewRunner, NewController and the deprecated
// Run/RunSeries wrappers) wraps it, so callers can test with
// errors.Is(err, ErrUnknownPolicy).
var ErrUnknownPolicy = errors.New("unknown policy")

// allocByName resolves a Table 6 policy name to a fresh allocator;
// sched.ByName is the single source of truth for the name set.
func allocByName(policy string) (Allocator, error) {
	alloc, ok := sched.ByName(policy)
	if !ok {
		return nil, fmt.Errorf("solarcore: %w %q (want one of %v)", ErrUnknownPolicy, policy, Policies())
	}
	return alloc, nil
}

// Observability layer (package obs). Observer hooks, metric names and
// the JSONL event schema are specified in DESIGN.md §10.
type (
	// Observer receives simulation lifecycle hooks (see WithObserver).
	Observer = obs.Observer
	// Registry is a concurrency-safe store of counters, gauges and
	// histograms with snapshot export.
	Registry = obs.Registry
	// MetricsSnapshot is a point-in-time registry export; snapshots from
	// a fleet of runs merge with MergeMetrics.
	MetricsSnapshot = obs.Snapshot
	// JSONLSink is an Observer appending one JSON line per event to a
	// writer, in the schema ReadEvents decodes.
	JSONLSink = obs.JSONLSink
	// ObsEvent is one decoded JSONL event envelope.
	ObsEvent = obs.Event
)

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewJSONLSink builds an observer streaming events to w as JSON lines;
// call Flush (or Close) after the run.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// ReadEvents decodes and validates a JSONL event stream written by a
// JSONLSink.
func ReadEvents(r io.Reader) ([]ObsEvent, error) { return obs.ReadEvents(r) }

// MetricsObserver returns an Observer folding events into reg under the
// metric names of DESIGN.md §10.
func MetricsObserver(reg *Registry) Observer { return obs.Metrics(reg) }

// MergeMetrics aggregates registry snapshots across a fleet of runs.
func MergeMetrics(snaps ...MetricsSnapshot) MetricsSnapshot { return obs.MergeSnapshots(snaps...) }

// NopObserver returns the no-op observer: every hook is received and
// discarded. Useful for exercising the full hook path in benchmarks.
func NopObserver() Observer { return obs.Nop{} }

// runMode selects which engine entry point a Runner drives.
type runMode int

const (
	modePolicy  runMode = iota // MPPT tracking under a Table 6 policy
	modeFixed                  // non-tracking fixed-budget baseline
	modeBattery                // idealized battery-system baseline
	modeBank                   // stateful battery-bank standalone system
)

func (m runMode) String() string {
	switch m {
	case modePolicy:
		return "WithPolicy"
	case modeFixed:
		return "WithFixedBudget"
	case modeBattery:
		return "WithBattery"
	case modeBank:
		return "WithBank"
	}
	return fmt.Sprintf("runMode(%d)", int(m))
}

// Runner is the unified simulation entry point: one Config plus
// functional options replaces the historical Run / RunFixedPower /
// RunBattery / RunBatteryBank / RunSeries quintet (all still available
// as deprecated wrappers delegating here).
//
//	r, err := solarcore.NewRunner(solarcore.Config{Day: day, Mix: mix},
//	        solarcore.WithPolicy(solarcore.PolicyOpt),
//	        solarcore.WithObserver(sink),
//	        solarcore.WithContext(ctx))
//	res, err := r.Run()
//
// Exactly one mode option (WithPolicy, WithFixedBudget, WithBattery,
// WithBank) may be given; none defaults to WithPolicy(PolicyOpt), the
// paper's headline configuration. A Runner is immutable after NewRunner
// and may be reused: every Run/RunSeries call simulates fresh state
// (except the battery bank, which deliberately persists across runs to
// model multi-day wear).
type Runner struct {
	cfg  Config
	mode runMode
	// modes records every mode option applied, for conflict reporting.
	modes []runMode

	policy     string
	budgetW    float64
	batteryEff float64
	bank       *Bank
	bankEff    float64

	ctx       context.Context
	observers []Observer
}

// RunnerOption configures a Runner at construction.
type RunnerOption func(*Runner)

// WithPolicy selects an MPPT tracking run under a Table 6 policy name
// (PolicyIC, PolicyRR or PolicyOpt).
func WithPolicy(policy string) RunnerOption {
	return func(r *Runner) {
		r.mode = modePolicy
		r.modes = append(r.modes, modePolicy)
		r.policy = policy
	}
}

// WithFixedBudget selects the non-tracking Fixed-Power baseline at the
// given constant budget in watts.
func WithFixedBudget(budgetW float64) RunnerOption {
	return func(r *Runner) {
		r.mode = modeFixed
		r.modes = append(r.modes, modeFixed)
		r.budgetW = budgetW
	}
}

// WithBattery selects the idealized battery-equipped baseline at the
// given overall conversion efficiency (e.g. BatteryUpperEff).
func WithBattery(eff float64) RunnerOption {
	return func(r *Runner) {
		r.mode = modeBattery
		r.modes = append(r.modes, modeBattery)
		r.batteryEff = eff
	}
}

// WithBank selects the realistic battery-bank standalone system: the
// bank persists across runs (rate limits, losses, self-discharge and
// cycling wear accumulate), harvesting trackingEff of the panel MPP.
func WithBank(bank *Bank, trackingEff float64) RunnerOption {
	return func(r *Runner) {
		r.mode = modeBank
		r.modes = append(r.modes, modeBank)
		r.bank = bank
		r.bankEff = trackingEff
	}
}

// WithObserver attaches an observer to the run's lifecycle hooks. The
// option composes: each call adds another observer, and all of them (plus
// any Config.Observer) receive every event.
func WithObserver(o Observer) RunnerOption {
	return func(r *Runner) { r.observers = append(r.observers, o) }
}

// WithFaults installs a deterministic fault-injection schedule on every
// run (see ParseFaults and NewFaultSchedule). A nil or disarmed schedule
// — every injector at zero intensity — is exactly a no-op: the run is
// byte-identical to one without the option. Degradation activity is
// reported in DayResult.Faults and, with WithObserver, as fault/watchdog
// events.
func WithFaults(s *FaultSchedule) RunnerOption {
	return func(r *Runner) { r.cfg.Faults = s }
}

// WithContext attaches a cancellation context: the engine checks it at
// least once per tracking period (and per simulated day in RunSeries)
// and returns the wrapped context error instead of a partial result.
func WithContext(ctx context.Context) RunnerOption {
	return func(r *Runner) { r.ctx = ctx }
}

// NewRunner builds a Runner over cfg. It fails fast on conflicting mode
// options and on an unknown policy name (errors.Is ErrUnknownPolicy);
// value validation (budget sign, efficiency range, nil bank) stays with
// the engine so Runner calls report identical errors to the deprecated
// wrappers.
func NewRunner(cfg Config, opts ...RunnerOption) (*Runner, error) {
	r := &Runner{cfg: cfg, mode: modePolicy, policy: PolicyOpt}
	for _, opt := range opts {
		opt(r)
	}
	if len(r.modes) > 1 {
		return nil, fmt.Errorf("solarcore: conflicting runner modes %v (give at most one)", r.modes)
	}
	if r.mode == modePolicy {
		if _, err := allocByName(r.policy); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// runConfig materializes the per-run engine config: the base Config with
// the Runner's context and composed observers applied.
func (r *Runner) runConfig() Config {
	cfg := r.cfg
	if r.ctx != nil {
		cfg.Ctx = r.ctx
	}
	if len(r.observers) > 0 {
		all := append([]Observer{cfg.Observer}, r.observers...)
		cfg.Observer = obs.Multi(all...)
	}
	return cfg
}

// Run simulates one day in the Runner's mode. In bank mode it returns
// the embedded DayResult; use RunBank for the bank diagnostics.
func (r *Runner) Run() (*DayResult, error) {
	cfg := r.runConfig()
	switch r.mode {
	case modeFixed:
		return sim.RunFixed(cfg, r.budgetW)
	case modeBattery:
		return sim.RunBattery(cfg, r.batteryEff)
	case modeBank:
		res, err := sim.RunBatteryBank(cfg, r.bank, r.bankEff)
		if err != nil {
			return nil, err
		}
		return &res.DayResult, nil
	}
	alloc, err := allocByName(r.policy)
	if err != nil {
		return nil, err
	}
	return sim.RunMPPT(cfg, alloc)
}

// RunBank simulates one day against the persistent battery bank and
// returns its full diagnostics. It requires WithBank mode.
func (r *Runner) RunBank() (*BankDayResult, error) {
	if r.mode != modeBank {
		return nil, fmt.Errorf("solarcore: RunBank needs a WithBank runner (mode is %v)", r.mode)
	}
	return sim.RunBatteryBank(r.runConfig(), r.bank, r.bankEff)
}

// RunSeries simulates consecutive days under the Runner's MPPT policy,
// overriding the base config's Day per day; the allocator state persists
// across days as a deployed controller's would. It requires WithPolicy
// mode (the baselines have no meaningful multi-day tracking state).
func (r *Runner) RunSeries(days []*SolarDay) (*SeriesResult, error) {
	if r.mode != modePolicy {
		return nil, fmt.Errorf("solarcore: RunSeries needs a WithPolicy runner (mode is %v)", r.mode)
	}
	alloc, err := allocByName(r.policy)
	if err != nil {
		return nil, err
	}
	return sim.RunMPPTSeries(r.runConfig(), alloc, days)
}
