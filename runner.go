package solarcore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"solarcore/internal/atmos"
	"solarcore/internal/fault"
	"solarcore/internal/obs"
	"solarcore/internal/pv"
	"solarcore/internal/sched"
	"solarcore/internal/sim"
	"solarcore/internal/workload"
)

// ErrUnknownPolicy reports a policy name outside the Table 6 set. Every
// name-resolving entry point (NewRunner, NewController and the deprecated
// Run/RunSeries wrappers) wraps it, so callers can test with
// errors.Is(err, ErrUnknownPolicy).
var ErrUnknownPolicy = errors.New("unknown policy")

// allocByName resolves a Table 6 policy name to a fresh allocator;
// sched.ByName is the single source of truth for the name set.
func allocByName(policy string) (Allocator, error) {
	alloc, ok := sched.ByName(policy)
	if !ok {
		return nil, fmt.Errorf("solarcore: %w %q (want one of %v)", ErrUnknownPolicy, policy, Policies())
	}
	return alloc, nil
}

// Observability layer (package obs). Observer hooks, metric names and
// the JSONL event schema are specified in DESIGN.md §10.
type (
	// Observer receives simulation lifecycle hooks (see WithObserver).
	Observer = obs.Observer
	// Registry is a concurrency-safe store of counters, gauges and
	// histograms with snapshot export.
	Registry = obs.Registry
	// MetricsSnapshot is a point-in-time registry export; snapshots from
	// a fleet of runs merge with MergeMetrics.
	MetricsSnapshot = obs.Snapshot
	// JSONLSink is an Observer appending one JSON line per event to a
	// writer, in the schema ReadEvents decodes.
	JSONLSink = obs.JSONLSink
	// ObsEvent is one decoded JSONL event envelope.
	ObsEvent = obs.Event
)

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewJSONLSink builds an observer streaming events to w as JSON lines;
// call Flush (or Close) after the run.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// ReadEvents decodes and validates a JSONL event stream written by a
// JSONLSink.
func ReadEvents(r io.Reader) ([]ObsEvent, error) { return obs.ReadEvents(r) }

// MetricsObserver returns an Observer folding events into reg under the
// metric names of DESIGN.md §10.
func MetricsObserver(reg *Registry) Observer { return obs.Metrics(reg) }

// MergeMetrics aggregates registry snapshots across a fleet of runs.
func MergeMetrics(snaps ...MetricsSnapshot) MetricsSnapshot { return obs.MergeSnapshots(snaps...) }

// NopObserver returns the no-op observer: every hook is received and
// discarded. Useful for exercising the full hook path in benchmarks.
func NopObserver() Observer { return obs.Nop{} }

// runMode selects which engine entry point a Runner drives.
type runMode int

const (
	modePolicy  runMode = iota // MPPT tracking under a Table 6 policy
	modeFixed                  // non-tracking fixed-budget baseline
	modeBattery                // idealized battery-system baseline
	modeBank                   // stateful battery-bank standalone system
)

func (m runMode) String() string {
	switch m {
	case modePolicy:
		return "WithPolicy"
	case modeFixed:
		return "WithFixedBudget"
	case modeBattery:
		return "WithBattery"
	case modeBank:
		return "WithBank"
	}
	return fmt.Sprintf("runMode(%d)", int(m))
}

// Runner is the unified simulation entry point: one Config plus
// functional options replaces the historical Run / RunFixedPower /
// RunBattery / RunBatteryBank / RunSeries quintet (all still available
// as deprecated wrappers delegating here).
//
//	r, err := solarcore.NewRunner(solarcore.Config{Day: day, Mix: mix},
//	        solarcore.WithPolicy(solarcore.PolicyOpt),
//	        solarcore.WithObserver(sink),
//	        solarcore.WithContext(ctx))
//	res, err := r.Run()
//
// Exactly one mode option (WithPolicy, WithFixedBudget, WithBattery,
// WithBank) may be given; none defaults to WithPolicy(PolicyOpt), the
// paper's headline configuration. A Runner is immutable after NewRunner
// and may be reused: every Run/RunSeries call simulates fresh state
// (except the battery bank, which deliberately persists across runs to
// model multi-day wear).
type Runner struct {
	cfg  Config
	mode runMode
	// modes records every mode option applied, for conflict reporting.
	modes []runMode

	policy     string
	budgetW    float64
	batteryEff float64
	bank       *Bank
	bankEff    float64

	ctx       context.Context
	observers []Observer
}

// RunnerOption configures a Runner at construction.
type RunnerOption func(*Runner)

// WithPolicy selects an MPPT tracking run under a Table 6 policy name
// (PolicyIC, PolicyRR or PolicyOpt).
func WithPolicy(policy string) RunnerOption {
	return func(r *Runner) {
		r.mode = modePolicy
		r.modes = append(r.modes, modePolicy)
		r.policy = policy
	}
}

// WithFixedBudget selects the non-tracking Fixed-Power baseline at the
// given constant budget in watts.
func WithFixedBudget(budgetW float64) RunnerOption {
	return func(r *Runner) {
		r.mode = modeFixed
		r.modes = append(r.modes, modeFixed)
		r.budgetW = budgetW
	}
}

// WithBattery selects the idealized battery-equipped baseline at the
// given overall conversion efficiency (e.g. BatteryUpperEff).
func WithBattery(eff float64) RunnerOption {
	return func(r *Runner) {
		r.mode = modeBattery
		r.modes = append(r.modes, modeBattery)
		r.batteryEff = eff
	}
}

// WithBank selects the realistic battery-bank standalone system: the
// bank persists across runs (rate limits, losses, self-discharge and
// cycling wear accumulate), harvesting trackingEff of the panel MPP.
func WithBank(bank *Bank, trackingEff float64) RunnerOption {
	return func(r *Runner) {
		r.mode = modeBank
		r.modes = append(r.modes, modeBank)
		r.bank = bank
		r.bankEff = trackingEff
	}
}

// WithObserver attaches an observer to the run's lifecycle hooks. The
// option composes: each call adds another observer, and all of them (plus
// any Config.Observer) receive every event.
func WithObserver(o Observer) RunnerOption {
	return func(r *Runner) { r.observers = append(r.observers, o) }
}

// WithFaults installs a deterministic fault-injection schedule on every
// run (see ParseFaults and NewFaultSchedule). A nil or disarmed schedule
// — every injector at zero intensity — is exactly a no-op: the run is
// byte-identical to one without the option. Degradation activity is
// reported in DayResult.Faults and, with WithObserver, as fault/watchdog
// events.
func WithFaults(s *FaultSchedule) RunnerOption {
	return func(r *Runner) { r.cfg.Faults = s }
}

// WithContext attaches a cancellation context: the engine checks it at
// least once per tracking period (and per simulated day in RunSeries)
// and returns the wrapped context error instead of a partial result.
func WithContext(ctx context.Context) RunnerOption {
	return func(r *Runner) { r.ctx = ctx }
}

// NewRunner builds a Runner over cfg. It fails fast on conflicting mode
// options and on an unknown policy name (errors.Is ErrUnknownPolicy);
// value validation (budget sign, efficiency range, nil bank) stays with
// the engine so Runner calls report identical errors to the deprecated
// wrappers.
func NewRunner(cfg Config, opts ...RunnerOption) (*Runner, error) {
	r := &Runner{cfg: cfg, mode: modePolicy, policy: PolicyOpt}
	for _, opt := range opts {
		opt(r)
	}
	if len(r.modes) > 1 {
		return nil, fmt.Errorf("solarcore: conflicting runner modes %v (give at most one)", r.modes)
	}
	if r.mode == modePolicy {
		if _, err := allocByName(r.policy); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// runConfig materializes the per-run engine config: the base Config with
// the Runner's context and composed observers applied.
func (r *Runner) runConfig() Config {
	cfg := r.cfg
	if r.ctx != nil {
		cfg.Ctx = r.ctx
	}
	if len(r.observers) > 0 {
		all := append([]Observer{cfg.Observer}, r.observers...)
		cfg.Observer = obs.Multi(all...)
	}
	return cfg
}

// Run simulates one day in the Runner's mode. In bank mode it returns
// the embedded DayResult; use RunBank for the bank diagnostics.
func (r *Runner) Run() (*DayResult, error) {
	cfg := r.runConfig()
	switch r.mode {
	case modeFixed:
		return sim.RunFixed(cfg, r.budgetW)
	case modeBattery:
		return sim.RunBattery(cfg, r.batteryEff)
	case modeBank:
		res, err := sim.RunBatteryBank(cfg, r.bank, r.bankEff)
		if err != nil {
			return nil, err
		}
		return &res.DayResult, nil
	}
	alloc, err := allocByName(r.policy)
	if err != nil {
		return nil, err
	}
	return sim.RunMPPT(cfg, alloc)
}

// RunBank simulates one day against the persistent battery bank and
// returns its full diagnostics. It requires WithBank mode.
func (r *Runner) RunBank() (*BankDayResult, error) {
	if r.mode != modeBank {
		return nil, fmt.Errorf("solarcore: RunBank needs a WithBank runner (mode is %v)", r.mode)
	}
	return sim.RunBatteryBank(r.runConfig(), r.bank, r.bankEff)
}

// RunSpec is a fully serializable description of one simulated day: the
// wire format of the solard HTTP API (internal/serve, DESIGN.md §12) and
// of any other consumer that must name a run without holding live model
// objects. The zero value of every field means "the paper's default";
// Normalized materializes those defaults, and two specs describe the same
// simulation exactly when their Canonical strings are equal — Hash is the
// cache/coalescing identity the server uses.
type RunSpec struct {
	// Site is a Table 2 site code: "AZ", "CO", "NC" or "TN" (default AZ).
	Site string `json:"site,omitempty"`
	// Season is "Jan", "Apr", "Jul" or "Oct" (default Jul).
	Season string `json:"season,omitempty"`
	// Mix is a Table 5 workload mix name (default HM2).
	Mix string `json:"mix,omitempty"`
	// Policy is a Table 6 policy name; it selects an MPPT tracking run
	// and defaults to PolicyOpt. Mutually exclusive with FixedW and
	// BatteryEff.
	Policy string `json:"policy,omitempty"`
	// Day is the generated weather day index (default 0).
	Day int `json:"day,omitempty"`
	// StepMin is the sub-sampling step in minutes (default 1).
	StepMin float64 `json:"step_min,omitempty"`
	// Panels is the parallel 180 W panel count of the array (default 1).
	Panels int `json:"panels,omitempty"`
	// FixedW, when positive, selects the non-tracking Fixed-Power
	// baseline at this budget in watts instead of an MPPT policy.
	FixedW float64 `json:"fixed_w,omitempty"`
	// BatteryEff, when positive, selects the idealized battery baseline
	// at this overall conversion efficiency in (0, 1].
	BatteryEff float64 `json:"battery_eff,omitempty"`
	// Faults is a CLI-style fault-schedule spec (see ParseFaults); empty
	// means a fault-free run.
	Faults string `json:"faults,omitempty"`
}

// Normalized returns the spec with every defaulted field materialized:
// the result simulates identically to the receiver, and equal Normalized
// specs have equal Canonical strings.
func (s RunSpec) Normalized() RunSpec {
	if s.Site == "" {
		s.Site = "AZ"
	}
	if s.Season == "" {
		s.Season = "Jul"
	}
	if s.Mix == "" {
		s.Mix = "HM2"
	}
	if s.Policy == "" && s.FixedW <= 0 && s.BatteryEff <= 0 {
		s.Policy = PolicyOpt
	}
	if s.StepMin <= 0 {
		s.StepMin = 1
	}
	if s.Panels == 0 {
		s.Panels = 1
	}
	return s
}

// specFinite rejects NaN and ±Inf field values before they reach the
// canonical encoding or the engine.
func specFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("solarcore: spec %s is not finite", name)
	}
	return nil
}

// Validate resolves every name-bearing field and checks value ranges,
// without running anything. An unknown Policy wraps ErrUnknownPolicy. A
// valid spec is guaranteed to build a Runner; engine-level failures can
// still surface at Run time (e.g. a degenerate weather day).
func (s RunSpec) Validate() error {
	n := s.Normalized()
	if _, err := atmos.SiteByCode(n.Site); err != nil {
		return fmt.Errorf("solarcore: spec site: %w", err)
	}
	if _, err := atmos.SeasonByName(n.Season); err != nil {
		return fmt.Errorf("solarcore: spec season: %w", err)
	}
	if _, err := workload.MixByName(n.Mix); err != nil {
		return fmt.Errorf("solarcore: spec mix: %w", err)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"step_min", n.StepMin}, {"fixed_w", n.FixedW}, {"battery_eff", n.BatteryEff}} {
		if err := specFinite(f.name, f.v); err != nil {
			return err
		}
	}
	if n.Day < 0 {
		return fmt.Errorf("solarcore: spec day %d is negative", n.Day)
	}
	if n.Panels < 1 {
		return fmt.Errorf("solarcore: spec panels %d (want >= 1)", n.Panels)
	}
	if n.FixedW < 0 {
		return fmt.Errorf("solarcore: spec fixed_w %g is negative", n.FixedW)
	}
	if n.BatteryEff < 0 || n.BatteryEff > 1 {
		return fmt.Errorf("solarcore: spec battery_eff %g outside (0, 1]", n.BatteryEff)
	}
	baselines := 0
	if n.FixedW > 0 {
		baselines++
	}
	if n.BatteryEff > 0 {
		baselines++
	}
	if baselines > 1 {
		return fmt.Errorf("solarcore: spec selects both fixed_w and battery_eff (give at most one)")
	}
	if baselines > 0 && s.Policy != "" {
		return fmt.Errorf("solarcore: spec selects policy %q and a baseline (give at most one)", s.Policy)
	}
	if baselines == 0 {
		if _, err := allocByName(n.Policy); err != nil {
			return err
		}
	}
	if _, err := fault.ParseSpec(n.Faults); err != nil {
		return fmt.Errorf("solarcore: spec faults: %w", err)
	}
	return nil
}

// Canonical renders the normalized spec as a stable, human-readable
// identity string: two specs simulate identically exactly when their
// Canonical strings are equal. Floats use the shortest round-trippable
// form, so the encoding is bijective for finite values.
func (s RunSpec) Canonical() string {
	n := s.Normalized()
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	parts := []string{
		"site=" + n.Site,
		"season=" + n.Season,
		"mix=" + n.Mix,
		"policy=" + n.Policy,
		"day=" + strconv.Itoa(n.Day),
		"step=" + g(n.StepMin),
		"panels=" + strconv.Itoa(n.Panels),
		"fixed=" + g(n.FixedW),
		"battery=" + g(n.BatteryEff),
		"faults=" + n.Faults,
	}
	return strings.Join(parts, "|")
}

// Hash returns the hex SHA-256 of Canonical — the request identity
// solard's result cache and request coalescer key on.
func (s RunSpec) Hash() string {
	sum := sha256.Sum256([]byte(s.Canonical()))
	return hex.EncodeToString(sum[:])
}

// Runner materializes the spec: it generates the weather day, binds the
// PV array, resolves the mix and builds a Runner in the spec's mode, with
// opts (observers, a context) applied on top. Validate runs first, so an
// invalid spec fails here with the same error.
func (s RunSpec) Runner(opts ...RunnerOption) (*Runner, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Normalized()
	site, err := atmos.SiteByCode(n.Site)
	if err != nil {
		return nil, err
	}
	season, err := atmos.SeasonByName(n.Season)
	if err != nil {
		return nil, err
	}
	mix, err := workload.MixByName(n.Mix)
	if err != nil {
		return nil, err
	}
	faults, err := fault.ParseSpec(n.Faults)
	if err != nil {
		return nil, err
	}
	trace := atmos.Generate(site, season, atmos.GenConfig{Day: n.Day})
	day, err := sim.NewSolarDay(trace, pv.BP3180N(), 1, n.Panels)
	if err != nil {
		return nil, fmt.Errorf("solarcore: spec day build: %w", err)
	}
	cfg := Config{Day: day, Mix: mix, StepMin: n.StepMin}
	all := []RunnerOption{WithFaults(faults)}
	switch {
	case n.FixedW > 0:
		all = append(all, WithFixedBudget(n.FixedW))
	case n.BatteryEff > 0:
		all = append(all, WithBattery(n.BatteryEff))
	default:
		all = append(all, WithPolicy(n.Policy))
	}
	all = append(all, opts...)
	return NewRunner(cfg, all...)
}

// Run materializes and runs the spec under ctx in one call; see Runner.
func (s RunSpec) Run(ctx context.Context, opts ...RunnerOption) (*DayResult, error) {
	r, err := s.Runner(append([]RunnerOption{WithContext(ctx)}, opts...)...)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// RunSeries simulates consecutive days under the Runner's MPPT policy,
// overriding the base config's Day per day; the allocator state persists
// across days as a deployed controller's would. It requires WithPolicy
// mode (the baselines have no meaningful multi-day tracking state).
func (r *Runner) RunSeries(days []*SolarDay) (*SeriesResult, error) {
	if r.mode != modePolicy {
		return nil, fmt.Errorf("solarcore: RunSeries needs a WithPolicy runner (mode is %v)", r.mode)
	}
	alloc, err := allocByName(r.policy)
	if err != nil {
		return nil, err
	}
	return sim.RunMPPTSeries(r.runConfig(), alloc, days)
}
