package solarcore_test

import (
	"fmt"

	"solarcore"
	"solarcore/internal/pv"
)

// The BP3180N module at standard test conditions hits its 180 W nameplate.
func ExampleNewModule() {
	m := solarcore.NewModule(solarcore.BP3180N())
	mpp := m.MPP(pv.STC)
	fmt.Printf("Pmax = %.0f W at %.1f V\n", mpp.P, mpp.V)
	// Output: Pmax = 181 W at 35.9 V
}

// Weather generation is deterministic: the same site, season and day index
// always produce the same trace.
func ExampleGenerateWeather() {
	a := solarcore.GenerateWeather(solarcore.AZ, solarcore.Jan, 0)
	b := solarcore.GenerateWeather(solarcore.AZ, solarcore.Jan, 0)
	fmt.Println(a.Label(), a.InsolationKWh() == b.InsolationKWh())
	// Output: Jan@AZ true
}

// Table 5's workload mixes are addressed by name.
func ExampleMixByName() {
	mix, _ := solarcore.MixByName("HM2")
	fmt.Println(mix.Kind, len(mix.Programs))
	// Output: heterogeneous 8
}

// A full SolarCore day: weather → panel → workload → policy → metrics.
func ExampleRun() {
	trace := solarcore.GenerateWeather(solarcore.AZ, solarcore.Jul, 0)
	day, err := solarcore.NewDay(trace, solarcore.BP3180N(), 1, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	mix, _ := solarcore.MixByName("L1")
	res, err := solarcore.Run(solarcore.Config{Day: day, Mix: mix, StepMin: 2}, solarcore.PolicyOpt)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Policy, res.Utilization() > 0.7)
	// Output: MPPT&Opt true
}

// A partially shaded module exposes several local maxima; MPP reports the
// global one.
func ExampleNewShadedString() {
	s := solarcore.NewShadedString(solarcore.BP3180N(), []float64{1, 1, 0.3})
	peaks := s.LocalMPPs(pv.STC)
	global := s.MPP(pv.STC)
	fmt.Println(len(peaks) >= 2, global.P > peaks[len(peaks)-1].P*0.99)
	// Output: true true
}

// The Table 6 policies, in the paper's order.
func ExamplePolicies() {
	for _, p := range solarcore.Policies() {
		fmt.Println(p)
	}
	// Output:
	// MPPT&IC
	// MPPT&RR
	// MPPT&Opt
}
